#include "cascabel/selection.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pdl/pattern.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace cascabel {

starvm::DeviceKind device_kind_for_target(std::string_view platform_name) {
  // gpu-targeting entries execute on accelerators, all others on CPUs
  // (spe counts as accelerator too — it is a simulated device).
  if (pdl::util::iequals(platform_name, "cuda") ||
      pdl::util::iequals(platform_name, "opencl") ||
      pdl::util::iequals(platform_name, "cell")) {
    return starvm::DeviceKind::kAccelerator;
  }
  return starvm::DeviceKind::kCpu;
}

SelectionResult preselect(const TaskRepository& repository,
                          const pdl::Platform& target, pdl::Diagnostics& diags) {
  return preselect(repository, target, diags, SelectionOptions{});
}

SelectionResult preselect(const TaskRepository& repository,
                          const pdl::Platform& target, pdl::Diagnostics& diags,
                          const SelectionOptions& options) {
  obs::Span span("cascabel.preselect", target.name());
  static obs::Counter& considered = obs::counter("cascabel.variants_considered");
  static obs::Counter& accepted = obs::counter("cascabel.variants_selected");
  static obs::Counter& rej_unknown =
      obs::counter("cascabel.variants_rejected.unknown_platform");
  static obs::Counter& rej_no_match =
      obs::counter("cascabel.variants_rejected.pattern_mismatch");
  static obs::Counter& rej_no_entry =
      obs::counter("cascabel.variants_rejected.no_platform_entry");
  SelectionResult result;

  for (const auto& variant : repository.variants()) {
    considered.inc();
    bool selected = false;
    for (const auto& platform_name : variant.pragma.target_platforms) {
      // Either a registered platform name ("x86", "cuda", ...) or an
      // explicit inline requirement: pattern(M[W(ARCHITECTURE=gpu)x2])
      // (paper §II: expert code carries its own architectural constraints).
      const std::string* pattern = nullptr;
      std::string inline_pattern;
      if (pdl::util::starts_with(platform_name, "pattern(") &&
          pdl::util::ends_with(platform_name, ")")) {
        inline_pattern = platform_name.substr(8, platform_name.size() - 9);
        pattern = &inline_pattern;
      } else {
        pattern = repository.requirement(platform_name);
      }
      if (pattern == nullptr) {
        rej_unknown.inc();
        add_warning(diags,
                    "variant '" + variant.pragma.variant_name +
                        "' targets unknown platform '" + platform_name +
                        "' (no requirement pattern registered)");
        continue;
      }
      pdl::MatchResult match = pdl::match(*pattern, target);
      if (!match) {
        rej_no_match.inc();
        add_info(diags,
                 "variant '" + variant.pragma.variant_name + "' pruned for '" +
                     platform_name + "': " + match.reason);
        continue;
      }

      SelectedVariant sel;
      sel.variant = &variant;
      sel.matched_platform = platform_name;
      sel.is_fallback = TaskRepository::is_fallback_platform(platform_name);

      // Static mapping (§IV-B): every target PU the variant may execute on.
      // match() only witnesses the *requirement* (minimal bindings); the
      // mapping enumerates all Workers satisfying any pattern-leaf
      // constraint, plus the Master for the sequential fall-back.
      auto pattern_platform = pdl::parse_pattern(*pattern);
      if (!inline_pattern.empty()) {
        // Inline requirements carry no platform name to classify; the
        // device class follows the pattern's worker architectures.
        sel.device_kind = starvm::DeviceKind::kCpu;
        if (pattern_platform.ok()) {
          for (const auto& pm : pattern_platform.value().masters()) {
            for (const auto* node : pdl::subtree(*pm)) {
              const std::string arch = node->descriptor().get("ARCHITECTURE");
              if (node->kind() == pdl::PuKind::kWorker &&
                  (pdl::util::iequals(arch, "gpu") ||
                   pdl::util::iequals(arch, "spe"))) {
                sel.device_kind = starvm::DeviceKind::kAccelerator;
              }
            }
          }
        }
      } else {
        sel.device_kind = device_kind_for_target(platform_name);
      }

      if (pattern_platform.ok()) {
        std::vector<const pdl::ProcessingUnit*> pattern_leaves;
        for (const auto& pm : pattern_platform.value().masters()) {
          for (const auto* node : pdl::subtree(*pm)) {
            sel.specificity +=
                1 + static_cast<int>(node->descriptor().size());
            if (node->kind() == pdl::PuKind::kWorker) pattern_leaves.push_back(node);
          }
        }
        for (const auto* concrete : pdl::all_pus(target)) {
          if (sel.is_fallback && concrete->kind() == pdl::PuKind::kMaster) {
            sel.mapped_pus.push_back(concrete);
            continue;
          }
          for (const auto* leaf : pattern_leaves) {
            if (pdl::pu_satisfies(*leaf, *concrete)) {
              sel.mapped_pus.push_back(concrete);
              break;
            }
          }
        }
      }
      // Measured-rate annotation: the engine records each variant's
      // observations under its own name (Codelet::calibration_alias), so a
      // store entry keyed by the variant name is this variant's learned
      // rate. The best sufficiently-sampled device rate stands for the
      // variant; entries below the sample threshold stay advisory-only.
      if (options.perf_store != nullptr) {
        for (const auto& entry : options.perf_store->entries) {
          if (entry.codelet == variant.pragma.variant_name &&
              entry.count >= options.min_samples && entry.ema_gflops > 0.0) {
            sel.measured_gflops = std::max(sel.measured_gflops, entry.ema_gflops);
          }
        }
      }
      // Accuracy veto: evaluate the variant's declared error model at the
      // guard's depth and magnitude — the same closed form A701 propagates
      // statically. A vetoed variant stays selectable as a last resort but
      // may never win a measured-rate flip (rt::execute skips it).
      if (options.accuracy.enabled && variant.error_model.specified()) {
        const starvm::ErrorModel& model = variant.error_model;
        const double depth = options.accuracy.depth > 0.0
                                 ? options.accuracy.depth
                                 : (model.depth > 0.0 ? model.depth : 1.0);
        sel.static_error_bound = model.term(depth, options.accuracy.magnitude);
        if (sel.static_error_bound > options.accuracy.tolerance) {
          sel.accuracy_vetoed = true;
          add_info(diags, "accuracy guard: variant '" +
                              variant.pragma.variant_name +
                              "' declares a static error bound above the "
                              "tolerance; it may not win a measured-rate flip");
        }
      }
      result.by_interface[variant.pragma.task_interface].push_back(std::move(sel));
      accepted.inc();
      selected = true;
      break;  // first matching platform entry wins for this variant
    }
    if (!selected) {
      rej_no_entry.inc();
      add_info(diags, "variant '" + variant.pragma.variant_name +
                          "' has no matching platform on this target");
    }
  }

  // Order fall-backs first and check the fall-back guarantee per interface.
  for (auto& [interface_name, candidates] : result.by_interface) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const SelectedVariant& a, const SelectedVariant& b) {
                       return a.is_fallback > b.is_fallback;
                     });
    bool has_fallback = false;
    for (const auto& c : candidates) has_fallback |= c.is_fallback;
    if (!has_fallback) {
      add_error(diags,
                "task interface '" + interface_name +
                    "' has no sequential fall-back variant for a Master PU");
    }
  }

  // Interfaces that lost every variant.
  for (const auto& interface_name : repository.interfaces()) {
    if (result.by_interface.find(interface_name) == result.by_interface.end()) {
      add_error(diags, "task interface '" + interface_name +
                           "' has no variant matching the target platform");
    }
  }
  return result;
}

std::vector<const pdl::ProcessingUnit*> resolve_execution_group(
    const pdl::Platform& target, const std::string& group, pdl::Diagnostics& diags) {
  if (!group.empty()) {
    auto members = pdl::group_members(target, group);
    if (!members.empty()) return members;
    add_warning(diags, "execution group '" + group +
                           "' names no PU in the target platform; using all PUs");
  }
  return pdl::all_pus(target);
}

}  // namespace cascabel
