#include "cascabel/feedback.hpp"

#include <map>

#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "util/string_util.hpp"

namespace cascabel {

namespace {

/// "cpu_cores#3" -> "cpu_cores"; "master:0" -> "0"; "gpu1" -> "gpu1".
std::string pu_id_of_device(const std::string& device_name) {
  std::string name = device_name;
  if (pdl::util::starts_with(name, "master:")) name = name.substr(7);
  const auto hash = name.find('#');
  if (hash != std::string::npos) name = name.substr(0, hash);
  return name;
}

struct Observed {
  double flops = 0.0;
  double busy_seconds = 0.0;
};

}  // namespace

pdl::Platform refine_platform(const pdl::Platform& platform,
                              const starvm::EngineStats& stats,
                              RefineReport* report) {
  pdl::Platform refined = platform.clone();

  // Aggregate observed work per PU id across that PU's devices.
  std::map<std::string, Observed> per_pu;
  std::vector<double> device_busy(stats.devices.size(), 0.0);
  std::vector<double> device_flops(stats.devices.size(), 0.0);
  for (const auto& t : stats.trace) {
    if (t.device < 0 || static_cast<std::size_t>(t.device) >= stats.devices.size()) {
      continue;
    }
    device_busy[static_cast<std::size_t>(t.device)] += t.exec_seconds;
    device_flops[static_cast<std::size_t>(t.device)] += t.flops;
  }
  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    if (device_flops[d] <= 0.0 || device_busy[d] <= 0.0) continue;
    Observed& o = per_pu[pu_id_of_device(stats.devices[d].name)];
    o.flops += device_flops[d];
    o.busy_seconds += device_busy[d];
  }

  RefineReport local;
  for (const auto& [pu_id, observed] : per_pu) {
    // find_pu returns const; we own the clone, so the cast is sound.
    auto* pu = const_cast<pdl::ProcessingUnit*>(pdl::find_pu(refined, pu_id));
    if (pu == nullptr) continue;
    const double gflops = observed.flops / observed.busy_seconds / 1e9;
    const std::string value = std::to_string(gflops);

    pdl::Property measured;
    measured.name = pdl::props::kMeasuredGflops;
    measured.value = value;
    measured.fixed = false;  // runtime-instantiated, editable downstream
    if (pdl::Property* existing = pu->descriptor().find(pdl::props::kMeasuredGflops)) {
      existing->value = value;
    } else {
      pu->descriptor().add(std::move(measured));
    }
    ++local.pus_updated;

    // Re-instantiate SUSTAINED_GFLOPS only when the descriptor marked it
    // unfixed (paper §III-B: fixed values are authoritative).
    if (pdl::Property* sustained =
            pu->descriptor().find(pdl::props::kSustainedGflops);
        sustained != nullptr && !sustained->fixed) {
      sustained->value = value;
      ++local.sustained_updated;
    }
  }
  if (report != nullptr) *report = local;
  return refined;
}

}  // namespace cascabel
