// Built-in expert task variants (paper Figure 1: "Expert programmers
// provide implementation variants for specific platforms").
//
// The paper's translator selected GotoBLAS- and CuBLAS-backed DGEMM
// variants from its repository; this module provides our equivalents on
// top of the kernels library, plus vector-add variants for the Listing 3/4
// example. Each variant is both registered as a source-level TaskVariant
// (so pre-selection sees its target platforms) and bound to an executable
// implementation.
//
// Interfaces:
//   Idgemm  (C: readwrite, A: read, B: read)  — C += A * B
//     dgemm_seq    x86   CPU          (the sequential fall-back)
//     dgemm_smp    smp   CPU          (per-core blocked kernel)
//     dgemm_cublas cuda  Accelerator  (simulated CuBLAS)
//   Ivecadd (A: readwrite, B: read)           — A += B
//     vecadd_seq   x86   CPU
//     vecadd_smp   smp   CPU
//     vecadd_ocl   opencl Accelerator
#pragma once

#include "cascabel/repository.hpp"

namespace cascabel {

/// Register all built-in variants into `repo` (idempotent per repository:
/// duplicate names are rejected by the repository).
void register_builtin_variants(TaskRepository& repo);

}  // namespace cascabel
