// ABL1 — scheduler-policy ablation (DESIGN.md).
//
// The paper defers "highly dynamic run-time schedulers" to future work
// (§VI); this harness quantifies what the policy choice costs on the
// paper's own testbed model. Synthetic task mixes run in pure simulation
// on the starpu+2gpu platform; for each (workload, policy) pair the
// modeled makespan is reported next to a lower bound (total work divided
// by aggregate throughput).
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "discovery/presets.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace {

struct Workload {
  const char* name;
  std::vector<double> task_flops;  ///< FLOPs per task
  bool chain = false;  ///< tasks form one dependency chain (no parallelism)
};

Workload uniform_workload(int tasks, double flops) {
  Workload w{"uniform", {}, false};
  w.task_flops.assign(static_cast<std::size_t>(tasks), flops);
  return w;
}

Workload bimodal_workload(int tasks) {
  // 10% big tasks, 90% small — the mix where greedy policies misplace work.
  Workload w{"bimodal", {}, false};
  for (int i = 0; i < tasks; ++i) {
    w.task_flops.push_back(i % 10 == 0 ? 4e9 : 2e8);
  }
  std::mt19937 rng(7);
  std::shuffle(w.task_flops.begin(), w.task_flops.end(), rng);
  return w;
}

Workload chain_workload(int tasks, double flops) {
  Workload w{"chain", {}, true};
  w.task_flops.assign(static_cast<std::size_t>(tasks), flops);
  return w;
}

double run(const Workload& workload, starvm::SchedulerKind policy) {
  starvm::BridgeOptions bridge;
  bridge.scheduler = policy;
  bridge.mode = starvm::ExecutionMode::kPureSim;
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu(), bridge);
  config.value().task_overhead_us = 10.0;
  starvm::Engine engine(std::move(config).value());

  // One codelet per distinct cost so the analytic model sees exact FLOPs
  // (codelets must outlive their tasks).
  std::map<double, std::unique_ptr<starvm::Codelet>> codelets;
  const auto codelet_for = [&](double flops) {
    auto it = codelets.find(flops);
    if (it == codelets.end()) {
      auto codelet = std::make_unique<starvm::Codelet>();
      codelet->name = "synthetic_" + std::to_string(flops);
      codelet->impls.push_back({starvm::DeviceKind::kCpu, nullptr});
      codelet->impls.push_back({starvm::DeviceKind::kAccelerator, nullptr});
      codelet->flops = [flops](const std::vector<starvm::BufferView>&) {
        return flops;
      };
      it = codelets.emplace(flops, std::move(codelet)).first;
    }
    return it->second.get();
  };

  std::vector<double> chain_buffer(1, 0.0);
  starvm::DataHandle* chain_handle =
      workload.chain ? engine.register_vector(chain_buffer.data(), 1) : nullptr;

  for (double flops : workload.task_flops) {
    starvm::TaskDesc desc;
    desc.codelet = codelet_for(flops);
    if (workload.chain) {
      desc.buffers.push_back({chain_handle, starvm::Access::kReadWrite});
    }
    engine.submit(std::move(desc));
  }
  (void)engine.wait_all();
  return engine.stats().makespan_seconds;
}

double aggregate_gflops() {
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  double total = 0.0;
  for (const auto& d : config.value().devices) total += d.sustained_gflops;
  return total;
}

double fastest_gflops() {
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  double best = 0.0;
  for (const auto& d : config.value().devices) {
    best = std::max(best, d.sustained_gflops);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== ABL1: scheduler policy ablation (pure sim, starpu+2gpu "
              "platform) ===\n");
  const double agg = aggregate_gflops();
  const double fastest = fastest_gflops();

  std::vector<Workload> workloads;
  workloads.push_back(uniform_workload(256, 5e8));
  workloads.push_back(bimodal_workload(256));
  workloads.push_back(chain_workload(64, 5e8));

  std::printf("%-10s %12s | %10s %10s %10s\n", "workload", "bound [s]", "eager",
              "ws", "heft");
  for (const auto& w : workloads) {
    double total_flops = 0.0;
    for (double f : w.task_flops) total_flops += f;
    // Chains cannot use more than one device at a time.
    const double bound =
        w.chain ? total_flops / (fastest * 1e9) : total_flops / (agg * 1e9);
    std::printf("%-10s %12.3f |", w.name, bound);
    for (auto policy : {starvm::SchedulerKind::kEager,
                        starvm::SchedulerKind::kWorkStealing,
                        starvm::SchedulerKind::kHeft}) {
      std::printf(" %10.3f", run(w, policy));
    }
    std::printf("\n");
  }
  std::printf("\nmakespan in seconds; 'bound' = total work / aggregate rate\n");
  std::printf("(chain bound uses the fastest single device).\n");
  return 0;
}
