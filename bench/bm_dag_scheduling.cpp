// ABL7 — DAG scheduling ablation (DESIGN.md), plus the placement-class
// scalability gate.
//
// Run without arguments, this prints the ABL7 table: the tiled Cholesky/LU
// DAGs in pure simulation on the paper's starpu+2gpu model, sweeping the
// scheduler policy and tile granularity against the aggregate-throughput
// lower bound.
//
// Run with any argument it becomes a google-benchmark binary exposing
// BM_DagSubmitDrain/{4,1000}: per-task submit+drain cost of a dependent
// two-wave DAG on the manycore platform at 4 and at 1000+ devices. CI
// compares the two — class-based HEFT keeps the 1000-device per-task cost
// within 3x of the 4-device cost instead of the ~250x a per-device scan
// would give.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "discovery/presets.hpp"
#include "solvers/tiled_cholesky.hpp"
#include "solvers/tiled_lu.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace {

struct RunResult {
  double makespan = 0.0;
  double total_flops = 0.0;
};

RunResult run(std::size_t n, int tiles, starvm::SchedulerKind policy, bool lu) {
  starvm::BridgeOptions bridge;
  bridge.scheduler = policy;
  bridge.mode = starvm::ExecutionMode::kPureSim;
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu(), bridge);
  starvm::Engine engine(std::move(config).value());

  // Pure simulation: data is never touched, so skip initialization.
  std::unique_ptr<double[]> a(new double[n * n]);
  double flops = 0.0;
  if (lu) {
    auto result = solvers::tiled_lu(engine, a.get(), n, tiles);
    if (!result.ok()) {
      std::fprintf(stderr, "lu failed: %s\n", result.error().str().c_str());
      std::exit(1);
    }
    flops = result.value().total_flops;
  } else {
    auto result = solvers::tiled_cholesky(engine, a.get(), n, tiles);
    if (!result.ok()) {
      std::fprintf(stderr, "cholesky failed: %s\n", result.error().str().c_str());
      std::exit(1);
    }
    flops = result.value().total_flops;
  }
  return RunResult{engine.stats().makespan_seconds, flops};
}

double aggregate_gflops() {
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  double total = 0.0;
  for (const auto& d : config.value().devices) total += d.sustained_gflops;
  return total;
}

// Per-task submit/drain cost at `devices` workers: a two-wave dependent
// DAG (compute then reduce per block) on the manycore platform, pure
// simulation, HEFT placement. One iteration = submit + drain 1024 tasks.
void BM_DagSubmitDrain(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  constexpr int kBlocks = 512;
  starvm::BridgeOptions bridge;
  bridge.scheduler = starvm::SchedulerKind::kHeft;
  bridge.mode = starvm::ExecutionMode::kPureSim;
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::manycore_platform(devices), bridge);
  starvm::EngineConfig engine_config = std::move(config).value();
  // Escape hatch for before/after comparisons (EXPERIMENTS.md): force the
  // exhaustive per-device HEFT scan instead of class-based placement.
  if (std::getenv("PDL_DAG_BENCH_EXHAUSTIVE") != nullptr) {
    engine_config.placement_classes = false;
  }
  starvm::Engine engine(std::move(engine_config));

  std::vector<double> data(kBlocks * 8, 1.0);
  starvm::DataHandle* h = engine.register_vector(data.data(), data.size());
  const auto blocks = engine.partition_vector(h, kBlocks);
  starvm::Codelet compute;
  compute.name = "compute";
  compute.impls.push_back(starvm::Implementation{starvm::DeviceKind::kCpu, nullptr});
  compute.flops = [](const std::vector<starvm::BufferView>&) { return 1e7; };
  starvm::Codelet reduce = compute;
  reduce.name = "reduce";

  for (auto _ : state) {
    std::vector<starvm::TaskDesc> batch;
    batch.reserve(2 * blocks.size());
    for (starvm::DataHandle* b : blocks) {
      batch.push_back(starvm::TaskDesc{&compute, {{b, starvm::Access::kReadWrite}}});
    }
    for (starvm::DataHandle* b : blocks) {
      batch.push_back(starvm::TaskDesc{&reduce, {{b, starvm::Access::kReadWrite}}});
    }
    engine.submit_batch(std::move(batch));
    if (!engine.wait_all().ok()) state.SkipWithError("wait_all failed");
  }
  state.SetItemsProcessed(state.iterations() * 2 * kBlocks);
  state.counters["devices"] = devices;
}
BENCHMARK(BM_DagSubmitDrain)->Arg(4)->Arg(1000)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int run_abl7_table();

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // google-benchmark mode (CI scalability gate / snapshots).
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_abl7_table();
}

namespace {

int run_abl7_table() {
  const std::size_t n = 8192;
  std::printf("=== ABL7: DAG scheduling (N=%zu, starpu+2gpu, pure sim) ===\n", n);
  const double agg = aggregate_gflops();

  for (const bool lu : {false, true}) {
    std::printf("%s:\n", lu ? "tiled LU (denser trailing updates)"
                            : "tiled Cholesky");
    std::printf("%8s %8s %12s | %10s %10s %10s\n", "tiles", "tasks", "bound [s]",
                "eager", "ws", "heft");
    for (int tiles : {4, 8, 16, 32}) {
      const int t = tiles;
      const int tasks = lu ? t + t * (t - 1) + (t - 1) * t * (2 * t - 1) / 6
                           : t + t * (t - 1) + t * (t - 1) * (t - 2) / 6;
      double bound = 0.0;
      std::printf("%8d %8d", tiles, tasks);
      bool first = true;
      for (auto policy : {starvm::SchedulerKind::kEager,
                          starvm::SchedulerKind::kWorkStealing,
                          starvm::SchedulerKind::kHeft}) {
        const RunResult r = run(n, tiles, policy, lu);
        if (first) {
          bound = r.total_flops / (agg * 1e9);
          std::printf(" %12.3f |", bound);
          first = false;
        }
        std::printf(" %10.3f", r.makespan);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("makespan [s]; bound = total FLOPs / aggregate device rate.\n");
  std::printf("Coarse tilings expose too little parallelism for 8 devices;\n");
  std::printf("fine tilings raise the scheduling stakes (HEFT vs greedy).\n");
  return 0;
}

}  // namespace
