// ABL7 — DAG scheduling ablation (DESIGN.md).
//
// The scheduler ablation ABL1 uses independent task batches; real
// applications ship dependency graphs. This harness runs the tiled
// Cholesky DAG in pure simulation on the paper's starpu+2gpu model and
// sweeps (a) the scheduler policy and (b) the tile granularity, reporting
// modeled makespans against the aggregate-throughput lower bound — the
// DAG's critical path keeps every policy above it, and model-based
// placement matters more as tiles shrink.
#include <cstdio>
#include <memory>

#include "discovery/presets.hpp"
#include "solvers/tiled_cholesky.hpp"
#include "solvers/tiled_lu.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace {

struct RunResult {
  double makespan = 0.0;
  double total_flops = 0.0;
};

RunResult run(std::size_t n, int tiles, starvm::SchedulerKind policy, bool lu) {
  starvm::BridgeOptions bridge;
  bridge.scheduler = policy;
  bridge.mode = starvm::ExecutionMode::kPureSim;
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu(), bridge);
  starvm::Engine engine(std::move(config).value());

  // Pure simulation: data is never touched, so skip initialization.
  std::unique_ptr<double[]> a(new double[n * n]);
  double flops = 0.0;
  if (lu) {
    auto result = solvers::tiled_lu(engine, a.get(), n, tiles);
    if (!result.ok()) {
      std::fprintf(stderr, "lu failed: %s\n", result.error().str().c_str());
      std::exit(1);
    }
    flops = result.value().total_flops;
  } else {
    auto result = solvers::tiled_cholesky(engine, a.get(), n, tiles);
    if (!result.ok()) {
      std::fprintf(stderr, "cholesky failed: %s\n", result.error().str().c_str());
      std::exit(1);
    }
    flops = result.value().total_flops;
  }
  return RunResult{engine.stats().makespan_seconds, flops};
}

double aggregate_gflops() {
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  double total = 0.0;
  for (const auto& d : config.value().devices) total += d.sustained_gflops;
  return total;
}

}  // namespace

int main() {
  const std::size_t n = 8192;
  std::printf("=== ABL7: DAG scheduling (N=%zu, starpu+2gpu, pure sim) ===\n", n);
  const double agg = aggregate_gflops();

  for (const bool lu : {false, true}) {
    std::printf("%s:\n", lu ? "tiled LU (denser trailing updates)"
                            : "tiled Cholesky");
    std::printf("%8s %8s %12s | %10s %10s %10s\n", "tiles", "tasks", "bound [s]",
                "eager", "ws", "heft");
    for (int tiles : {4, 8, 16, 32}) {
      const int t = tiles;
      const int tasks = lu ? t + t * (t - 1) + (t - 1) * t * (2 * t - 1) / 6
                           : t + t * (t - 1) + t * (t - 1) * (t - 2) / 6;
      double bound = 0.0;
      std::printf("%8d %8d", tiles, tasks);
      bool first = true;
      for (auto policy : {starvm::SchedulerKind::kEager,
                          starvm::SchedulerKind::kWorkStealing,
                          starvm::SchedulerKind::kHeft}) {
        const RunResult r = run(n, tiles, policy, lu);
        if (first) {
          bound = r.total_flops / (agg * 1e9);
          std::printf(" %12.3f |", bound);
          first = false;
        }
        std::printf(" %10.3f", r.makespan);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("makespan [s]; bound = total FLOPs / aggregate device rate.\n");
  std::printf("Coarse tilings expose too little parallelism for 8 devices;\n");
  std::printf("fine tilings raise the scheduling stakes (HEFT vs greedy).\n");
  return 0;
}
