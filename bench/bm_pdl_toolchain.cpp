// ABL4 — PDL processing cost (DESIGN.md): parse, validate, query and
// serialize synthetic platforms of growing size. The paper positions PDL
// descriptors as inputs to compilers/auto-tuners/runtimes; these numbers
// show the descriptor layer is never the bottleneck.
#include <benchmark/benchmark.h>

#include "discovery/presets.hpp"
#include "pdl/extension.hpp"
#include "pdl/parser.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"
#include "xml/parser.hpp"

namespace {

/// A platform with `n` workers under hybrids of 8, each with properties.
pdl::Platform synthetic_platform(int n) {
  pdl::Platform p("synthetic");
  pdl::ProcessingUnit* m = p.add_master("m");
  m->descriptor().add(pdl::props::kArchitecture, "x86");
  pdl::ProcessingUnit* hybrid = nullptr;
  for (int i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      hybrid = m->add_child(pdl::PuKind::kHybrid, "h" + std::to_string(i / 8));
      hybrid->descriptor().add(pdl::props::kArchitecture, "x86");
    }
    pdl::ProcessingUnit* w =
        hybrid->add_child(pdl::PuKind::kWorker, "w" + std::to_string(i));
    w->descriptor().add(pdl::props::kArchitecture, i % 3 == 0 ? "gpu" : "x86_core");
    w->descriptor().add(pdl::props::kFrequencyMhz, "2660");
    w->descriptor().add(pdl::props::kPeakGflops, "10.6");
    w->logic_groups().push_back(i % 3 == 0 ? "gpu" : "cpu");
  }
  return p;
}

void BM_Serialize(benchmark::State& state) {
  const pdl::Platform p = synthetic_platform(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string xml = pdl::serialize(p);
    benchmark::DoNotOptimize(xml);
  }
}
BENCHMARK(BM_Serialize)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096);

void BM_ParsePlatform(benchmark::State& state) {
  const std::string xml =
      pdl::serialize(synthetic_platform(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto p = pdl::parse_platform(xml, diags);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParsePlatform)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096);

void BM_XmlParseOnly(benchmark::State& state) {
  const std::string xml =
      pdl::serialize(synthetic_platform(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto doc = pdl::xml::parse(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParseOnly)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096);

void BM_Validate(benchmark::State& state) {
  const pdl::Platform p = synthetic_platform(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pdl::Diagnostics diags;
    benchmark::DoNotOptimize(pdl::validate(p, diags));
  }
}
BENCHMARK(BM_Validate)->Arg(16)->Arg(128)->Arg(1024);

void BM_ValidateExtensions(benchmark::State& state) {
  const pdl::Platform p = synthetic_platform(static_cast<int>(state.range(0)));
  const pdl::SchemaRegistry& registry = pdl::builtin_registry();
  for (auto _ : state) {
    pdl::Diagnostics diags;
    benchmark::DoNotOptimize(registry.validate_properties(p, diags));
  }
}
BENCHMARK(BM_ValidateExtensions)->Arg(16)->Arg(128)->Arg(1024);

void BM_QueryGroupMembers(benchmark::State& state) {
  const pdl::Platform p = synthetic_platform(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto members = pdl::group_members(p, "gpu");
    benchmark::DoNotOptimize(members);
  }
}
BENCHMARK(BM_QueryGroupMembers)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096);

void BM_QueryDataPath(benchmark::State& state) {
  const pdl::Platform p = synthetic_platform(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(0));
  const std::string from = "w0";
  const std::string to = "w" + std::to_string(n - 1);
  for (auto _ : state) {
    auto path = pdl::data_path(p, from, to);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_QueryDataPath)->Arg(16)->Arg(128)->Arg(1024);

void BM_RoundTrip(benchmark::State& state) {
  const pdl::Platform p = pdl::discovery::paper_platform_starpu_2gpu();
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto back = pdl::parse_platform(pdl::serialize(p), diags);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RoundTrip);

}  // namespace

BENCHMARK_MAIN();
