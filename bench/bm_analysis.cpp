// Analyzer throughput: the A5xx schedule-aware capacity analysis must stay
// cheap enough to run on every lint (CI runs it over all shipped platforms
// and examples). This benchmark drives the full pipeline — HEFT schedule
// simulation, capacity/contention rules, SARIF rendering — over the largest
// shipped platform (the paper testbed with two GPUs, 10 devices) and a
// synthetic 10k-task pipeline DAG, reporting tasks/second.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/capacity.hpp"
#include "analysis/graph_io.hpp"
#include "analysis/sarif.hpp"
#include "analysis/schedule_sim.hpp"
#include "pdl/parser.hpp"
#include "starvm/graph.hpp"

namespace {

pdl::Platform testbed_platform() {
  pdl::Diagnostics diags;
  auto platform = pdl::parse_platform_file(
      std::string(PDL_SOURCE_DIR) + "/platforms/testbed-starpu-2gpu.pdl.xml",
      diags);
  if (!platform.ok()) std::abort();
  return std::move(platform).value();
}

/// A synthetic pipeline DAG shaped like real workloads: `width` parallel
/// chains over per-chain 1 MB buffers, re-converging every `width` tasks
/// through a shared reduction buffer (so transfers, residency invalidation
/// and the contention sweep all stay exercised).
starvm::TaskGraph synthetic_pipeline(int tasks, int width) {
  starvm::TaskGraph graph;
  std::vector<int> chain_buffers;
  for (int c = 0; c < width; ++c) {
    chain_buffers.push_back(
        graph.add_buffer("chain" + std::to_string(c), 1000 * 1000));
  }
  const int shared = graph.add_buffer("reduce", 1000 * 1000);
  std::vector<int> last(static_cast<std::size_t>(width), -1);
  for (int t = 0; t < tasks; ++t) {
    const int c = t % width;
    std::vector<starvm::GraphAccess> accesses = {
        {chain_buffers[static_cast<std::size_t>(c)],
         starvm::Access::kReadWrite}};
    if (t % (width * 8) == 0) {
      accesses.push_back({shared, starvm::Access::kReadWrite});
    }
    std::vector<int> deps;
    if (last[static_cast<std::size_t>(c)] >= 0) {
      deps.push_back(last[static_cast<std::size_t>(c)]);
    }
    const int id =
        graph.add_task("t" + std::to_string(t), std::move(accesses),
                       std::move(deps));
    graph.set_task_flops(id, 5e7);
    last[static_cast<std::size_t>(c)] = id;
  }
  return graph;
}

void BM_SimulateSchedule(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const pdl::Platform platform = testbed_platform();
  const starvm::TaskGraph graph = synthetic_pipeline(tasks, 16);
  for (auto _ : state) {
    const analysis::SchedulePlan plan =
        analysis::simulate_schedule(graph, platform);
    benchmark::DoNotOptimize(plan.makespan_seconds);
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SimulateSchedule)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeScheduleWithRules(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const pdl::Platform platform = testbed_platform();
  const starvm::TaskGraph graph = synthetic_pipeline(tasks, 16);
  for (auto _ : state) {
    pdl::Diagnostics diags;
    analysis::analyze_schedule(graph, platform, {}, diags);
    benchmark::DoNotOptimize(diags.size());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_AnalyzeScheduleWithRules)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_RenderSarif(benchmark::State& state) {
  // Rendering cost for a pathological finding count (one per task).
  const int findings = static_cast<int>(state.range(0));
  pdl::Diagnostics diags;
  for (int i = 0; i < findings; ++i) {
    pdl::add_finding(diags, pdl::Severity::kWarning,
                     "A503-transfer-bound-task",
                     "task 't" + std::to_string(i) + "' is transfer bound",
                     pdl::SourceLoc{"g.graph", i + 1, 1},
                     "t" + std::to_string(i));
  }
  for (auto _ : state) {
    const std::string sarif = analysis::render_sarif(diags);
    benchmark::DoNotOptimize(sarif.size());
  }
  state.SetItemsProcessed(state.iterations() * findings);
}
BENCHMARK(BM_RenderSarif)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ParseGraphText(benchmark::State& state) {
  // Fixture-format parse throughput (pdlcheck --graph hot path).
  const int tasks = static_cast<int>(state.range(0));
  std::string text;
  for (int b = 0; b < 64; ++b) {
    text += "buffer b" + std::to_string(b) + " 1MB\n";
  }
  for (int t = 0; t < tasks; ++t) {
    text += "task t" + std::to_string(t) + " rw=b" +
            std::to_string(t % 64) + " flops=1e6";
    if (t > 0) text += " after=t" + std::to_string(t - 1);
    text += "\n";
  }
  for (auto _ : state) {
    auto graph = analysis::parse_graph_text(text);
    if (!graph.ok()) std::abort();
    benchmark::DoNotOptimize(graph.value().tasks().size());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ParseGraphText)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
