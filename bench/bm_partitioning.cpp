// ABL2 — partitioning-granularity ablation (DESIGN.md).
//
// The paper's execute annotations carry BLOCK distribution specifiers but
// leave the granularity to the toolchain. This harness sweeps the number
// of blocks per device for the case-study DGEMM on the starpu+2gpu model
// (pure simulation, N=4096) and reports the modeled makespan: too few
// blocks starve the heterogeneous device mix, too many drown in per-task
// overhead and transfers.
#include <cstdio>
#include <memory>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"

namespace {

double run(int blocks_per_device, std::size_t n) {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Options options;
  options.mode = starvm::ExecutionMode::kPureSim;
  options.blocks_per_device = blocks_per_device;
  cascabel::rt::Context ctx(pdl::discovery::paper_platform_starpu_2gpu(),
                            std::move(repo), options);

  // Pure sim: uninitialized allocations, never touched.
  std::unique_ptr<double[]> a(new double[n * n]);
  std::unique_ptr<double[]> b(new double[n * n]);
  std::unique_ptr<double[]> c(new double[n * n]);

  auto status = ctx.execute(
      "Idgemm", "all",
      {cascabel::rt::arg_matrix(c.get(), n, n, cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a.get(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b.get(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", status.error().str().c_str());
    std::exit(1);
  }
  (void)ctx.wait();
  const auto stats = ctx.stats();
  std::printf("%8d %10llu %14.3f %14.3f\n", blocks_per_device,
              static_cast<unsigned long long>(stats.tasks_completed),
              stats.makespan_seconds,
              static_cast<double>(stats.transfer_bytes) / (1 << 20));
  return stats.makespan_seconds;
}

}  // namespace

int main() {
  const std::size_t n = 4096;
  std::printf("=== ABL2: BLOCK granularity sweep (DGEMM N=%zu, starpu+2gpu, "
              "pure sim) ===\n",
              n);
  std::printf("%8s %10s %14s %14s\n", "blk/dev", "tasks", "makespan [s]",
              "xfer [MiB]");
  double best = 1e30;
  int best_blocks = 0;
  for (int blocks : {1, 2, 4, 8, 16, 32, 64}) {
    const double t = run(blocks, n);
    if (t < best) {
      best = t;
      best_blocks = blocks;
    }
  }
  std::printf("\nbest granularity: %d block(s) per device (%.3f s)\n", best_blocks,
              best);
  return 0;
}
