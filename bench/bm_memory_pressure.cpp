// ABL8 — device-memory pressure (DESIGN.md).
//
// The PDL carries GLOBAL_MEM_SIZE per accelerator (paper Listing 2); the
// runtime's replica model honors it with LRU eviction + write-back. This
// harness shrinks the GTX480/GTX285 memories below the case-study working
// set (DGEMM N=4096: B broadcast 128 MiB + row blocks) and reports how the
// modeled makespan and transfer traffic degrade as replicas thrash.
#include <cstdio>
#include <memory>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"

namespace {

/// The testbed with both GPU memories clamped to `mem_mib` (0 = datasheet).
pdl::Platform clamped_platform(std::size_t mem_mib) {
  pdl::Platform platform = pdl::discovery::paper_platform_starpu_2gpu();
  if (mem_mib == 0) return platform;
  for (const char* id : {"gpu1", "gpu2"}) {
    auto* gpu = const_cast<pdl::ProcessingUnit*>(pdl::find_pu(platform, id));
    for (auto& mr : gpu->memory_regions()) {
      if (pdl::Property* size = mr.descriptor.find(pdl::props::kSize)) {
        size->value = std::to_string(mem_mib * 1024);  // kB
        size->unit = "kB";
      }
    }
  }
  return platform;
}

void run(std::size_t mem_mib, std::size_t n) {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Options options;
  options.mode = starvm::ExecutionMode::kPureSim;
  cascabel::rt::Context ctx(clamped_platform(mem_mib), std::move(repo), options);

  std::unique_ptr<double[]> a(new double[n * n]);
  std::unique_ptr<double[]> b(new double[n * n]);
  std::unique_ptr<double[]> c(new double[n * n]);
  auto status = ctx.execute(
      "Idgemm", "all",
      {cascabel::rt::arg_matrix(c.get(), n, n, cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a.get(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b.get(), n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", status.error().str().c_str());
    std::exit(1);
  }
  (void)ctx.wait();

  const auto stats = ctx.stats();
  std::printf("%10s %14.3f %12.1f %10llu %12.1f\n",
              mem_mib == 0 ? "datasheet" : std::to_string(mem_mib).c_str(),
              stats.makespan_seconds,
              static_cast<double>(stats.transfer_bytes) / (1 << 20),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<double>(stats.writeback_bytes) / (1 << 20));
}

}  // namespace

int main() {
  const std::size_t n = 4096;  // B broadcast = 128 MiB
  std::printf("=== ABL8: GPU memory pressure (DGEMM N=%zu, starpu+2gpu, pure "
              "sim) ===\n",
              n);
  std::printf("%10s %14s %12s %10s %12s\n", "mem [MiB]", "makespan [s]",
              "xfer [MiB]", "evictions", "wrback[MiB]");
  for (std::size_t mem_mib : {0ul, 512ul, 256ul, 160ul, 144ul, 136ul, 132ul}) {
    run(mem_mib, n);
  }
  std::printf(
      "\nB (the broadcast matrix, 128 MiB) is touched by every task, so LRU\n"
      "keeps it resident; pressure lands on the A/C block replicas, which\n"
      "thrash (evictions + write-backs of the dirty C blocks) while the\n"
      "makespan barely moves — block write-backs are small next to compute.\n"
      "That asymmetry is the point: capacity pressure shows up as PCIe\n"
      "traffic long before it shows up in runtime.\n");
  return 0;
}
