// ABL5 — runtime overhead vs task granularity (DESIGN.md).
//
// StarPU-class runtimes pay per-task submission/scheduling/dependency
// costs; tasks must be coarse enough to amortize them. This benchmark
// measures starvm's real per-task wall cost (empty kernels) and the
// effective throughput at several kernel durations.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "starvm/engine.hpp"

namespace {

void BM_SubmitDrainEmptyTasks(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  starvm::Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext&) {}});
  for (auto _ : state) {
    starvm::EngineConfig config = starvm::EngineConfig::cpus(4);
    starvm::Engine engine(std::move(config));
    std::vector<std::vector<double>> buffers(static_cast<std::size_t>(tasks),
                                             std::vector<double>(1));
    for (auto& buf : buffers) {
      starvm::DataHandle* h = engine.register_vector(buf.data(), 1);
      engine.submit(starvm::TaskDesc{&noop, {{h, starvm::Access::kReadWrite}}});
    }
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SubmitDrainEmptyTasks)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Overhead gate for the always-on flight recorder: the identical workload
/// with the recorder disabled. BM_SubmitDrainEmptyTasks above runs with the
/// default (recorder on, 1024 records/device); the delta between the two is
/// the recorder's per-task cost and must stay within the CI noise gate.
void BM_SubmitDrainRecorderOff(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  starvm::Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext&) {}});
  for (auto _ : state) {
    starvm::EngineConfig config = starvm::EngineConfig::cpus(4);
    config.flight_records_per_device = 0;
    starvm::Engine engine(std::move(config));
    std::vector<std::vector<double>> buffers(static_cast<std::size_t>(tasks),
                                             std::vector<double>(1));
    for (auto& buf : buffers) {
      starvm::DataHandle* h = engine.register_vector(buf.data(), 1);
      engine.submit(starvm::TaskDesc{&noop, {{h, starvm::Access::kReadWrite}}});
    }
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SubmitDrainRecorderOff)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DependencyChain(benchmark::State& state) {
  // Worst case for the dependency tracker: every task depends on the last.
  const int tasks = static_cast<int>(state.range(0));
  starvm::Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext&) {}});
  for (auto _ : state) {
    starvm::Engine engine(starvm::EngineConfig::cpus(2));
    std::vector<double> data(1);
    starvm::DataHandle* h = engine.register_vector(data.data(), 1);
    for (int i = 0; i < tasks; ++i) {
      engine.submit(starvm::TaskDesc{&noop, {{h, starvm::Access::kReadWrite}}});
    }
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_DependencyChain)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Efficiency at a given kernel duration: wall time of N tasks vs ideal.
void BM_GranularityEfficiency(benchmark::State& state) {
  const auto kernel_us = static_cast<std::uint64_t>(state.range(0));
  constexpr int kTasks = 64;
  starvm::Codelet busy;
  busy.name = "busy";
  busy.impls.push_back(
      {starvm::DeviceKind::kCpu, [kernel_us](const starvm::ExecContext&) {
         const auto end = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(kernel_us);
         while (std::chrono::steady_clock::now() < end) {
         }
       }});
  for (auto _ : state) {
    starvm::Engine engine(starvm::EngineConfig::cpus(4));
    std::vector<std::vector<double>> buffers(kTasks, std::vector<double>(1));
    for (auto& buf : buffers) {
      starvm::DataHandle* h = engine.register_vector(buf.data(), 1);
      engine.submit(starvm::TaskDesc{&busy, {{h, starvm::Access::kReadWrite}}});
    }
    (void)engine.wait_all();
  }
  // Ideal: kTasks * kernel_us / 4 devices.
  state.counters["ideal_ms"] =
      static_cast<double>(kTasks) * static_cast<double>(kernel_us) / 4.0 / 1e3;
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_GranularityEfficiency)
    ->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Same workload as BM_SubmitDrainEmptyTasks but through submit_batch:
/// dependency inference, node allocation and worker wakeup are paid once
/// per batch. The delta against the per-submit variant is the batching win.
void BM_SubmitBatchEmptyTasks(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  starvm::Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext&) {}});
  for (auto _ : state) {
    starvm::Engine engine(starvm::EngineConfig::cpus(4));
    std::vector<std::vector<double>> buffers(static_cast<std::size_t>(tasks),
                                             std::vector<double>(1));
    std::vector<starvm::TaskDesc> batch;
    batch.reserve(buffers.size());
    for (auto& buf : buffers) {
      starvm::DataHandle* h = engine.register_vector(buf.data(), 1);
      batch.push_back(starvm::TaskDesc{&noop, {{h, starvm::Access::kReadWrite}}});
    }
    engine.submit_batch(std::move(batch));
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SubmitBatchEmptyTasks)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Contended submission: `producers` application threads submit
/// concurrently (disjoint handle sets) while the 4 workers drain. Scaling
/// from 1 to N producers exercises the lock split — wiring serializes on
/// the submit mutex but placement and the per-device ready queues do not.
void BM_MultiProducerSubmitDrain(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  constexpr int kTotalTasks = 8000;
  const int per_producer = kTotalTasks / producers;
  starvm::Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext&) {}});
  for (auto _ : state) {
    starvm::Engine engine(starvm::EngineConfig::cpus(4));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&engine, &noop, per_producer] {
        std::vector<std::vector<double>> buffers(
            static_cast<std::size_t>(per_producer), std::vector<double>(1));
        for (auto& buf : buffers) {
          starvm::DataHandle* h = engine.register_vector(buf.data(), 1);
          engine.submit(
              starvm::TaskDesc{&noop, {{h, starvm::Access::kReadWrite}}});
        }
        (void)engine.wait_all();  // buffers must outlive the drain
      });
    }
    for (auto& t : threads) t.join();
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * producers * per_producer);
}
BENCHMARK(BM_MultiProducerSubmitDrain)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Work-stealing under imbalance: round-robin placement lands every 4th
/// task (a 20 us spinner) on the same device queue; idle peers must steal
/// the backlog for the drain to finish anywhere near the ideal.
void BM_WorkStealingImbalanced(benchmark::State& state) {
  constexpr int kTasks = 256;
  starvm::Codelet mixed;
  mixed.name = "mixed";
  mixed.impls.push_back(
      {starvm::DeviceKind::kCpu, [](const starvm::ExecContext& ctx) {
         if (ctx.handle(0).cols() > 1) {  // heavy marker: 2-wide buffer
           const auto end =
               std::chrono::steady_clock::now() + std::chrono::microseconds(20);
           while (std::chrono::steady_clock::now() < end) {
           }
         }
       }});
  for (auto _ : state) {
    starvm::EngineConfig config = starvm::EngineConfig::cpus(4);
    config.scheduler = starvm::SchedulerKind::kWorkStealing;
    starvm::Engine engine(std::move(config));
    std::vector<std::vector<double>> buffers(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      auto& buf = buffers[static_cast<std::size_t>(i)];
      buf.resize(i % 4 == 0 ? 2 : 1);
      starvm::DataHandle* h = engine.register_vector(buf.data(), buf.size());
      engine.submit(starvm::TaskDesc{&mixed, {{h, starvm::Access::kReadWrite}}});
    }
    (void)engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_WorkStealingImbalanced)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
