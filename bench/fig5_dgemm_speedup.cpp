// FIG5 — reproduction of the paper's Figure 5 (§IV-D):
// "Speedup after translation from single threaded input program (single)
//  to multithreaded (starpu) and GPGPU (starpu+2gpu) versions."
//
// The paper's testbed: dual 2.66 GHz Xeon X5550 (8 cores) + GTX480 + GTX285,
// DGEMM 8192x8192, GotoBlas2 on the CPUs and CuBLAS on the GPUs under the
// StarPU runtime. Ours: the same three PDL descriptors feed the starvm
// bridge; GPUs are simulated devices with datasheet-calibrated performance
// models (DESIGN.md "Substitutions"), so this harness reports the paper's
// *shape* — who wins and by roughly what factor — not its absolute numbers.
//
// Two regimes:
//   * real execution (hybrid mode) at reduced N: kernels actually run,
//     CPU costs are measured, results are verified;
//   * pure simulation at the paper's N=8192: costs come entirely from the
//     calibrated models.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include <thread>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"

namespace {

struct Config {
  const char* label;
  pdl::Platform (*platform)();
};

const Config kConfigs[] = {
    {"single", pdl::discovery::paper_platform_single},
    {"starpu", pdl::discovery::paper_platform_starpu_cpu},
    {"starpu+2gpu", pdl::discovery::paper_platform_starpu_2gpu},
};

double run_dgemm(const Config& config, std::size_t n, starvm::ExecutionMode mode,
                 bool verify,
                 starvm::SchedulerKind scheduler = starvm::SchedulerKind::kHeft) {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::register_builtin_variants(repo);
  cascabel::rt::Options options;
  options.mode = mode;
  options.scheduler = scheduler;
  cascabel::rt::Context ctx(config.platform(), std::move(repo), options);

  // Pure simulation never touches the data: allocate without initializing
  // so the paper-scale point (3 x 512 MB at N=8192) costs no memset time.
  std::unique_ptr<double[]> a_store(new double[n * n]);
  std::unique_ptr<double[]> b_store(new double[n * n]);
  std::unique_ptr<double[]> c_store(new double[n * n]);
  kernels::Matrix a, b, c;
  double* a_ptr = a_store.get();
  double* b_ptr = b_store.get();
  double* c_ptr = c_store.get();
  if (mode == starvm::ExecutionMode::kHybrid) {
    a = kernels::Matrix(n, n);
    b = kernels::Matrix(n, n);
    c = kernels::Matrix(n, n);
    a.fill_random(1);
    b.fill_random(2);
    a_ptr = a.data();
    b_ptr = b.data();
    c_ptr = c.data();
  }
  auto status = ctx.execute(
      "Idgemm", "all",
      {cascabel::rt::arg_matrix(c_ptr, n, n, cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a_ptr, n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b_ptr, n, n, cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", status.error().str().c_str());
    std::exit(1);
  }
  (void)ctx.wait();

  if (verify) {
    kernels::Matrix ref(n, n);
    kernels::dgemm_parallel(n, n, n, a_ptr, b_ptr, ref.data());
    if (kernels::max_abs_diff(c_ptr, ref.data(), n * n) > 1e-9) {
      std::fprintf(stderr, "VERIFICATION FAILED (%s, N=%zu)\n", config.label, n);
      std::exit(1);
    }
  }
  return ctx.stats().makespan_seconds;
}

void print_block(const char* title, std::size_t n, starvm::ExecutionMode mode,
                 bool verify) {
  std::printf("%s (N=%zu)\n", title, n);
  std::printf("  %-14s %14s %10s\n", "configuration", "makespan [s]", "speedup");
  double t_single = 0.0;
  for (const Config& config : kConfigs) {
    const double t = run_dgemm(config, n, mode, verify);
    if (std::strcmp(config.label, "single") == 0) t_single = t;
    std::printf("  %-14s %14.4f %10.2f\n", config.label, t, t_single / t);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // --quick keeps the real-execution block small (used by smoke runs).
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  std::printf("=== FIG5: DGEMM speedup by target PDL descriptor ===\n");
  std::printf("paper: IPDPS'11 Fig.5 — single=1x, starpu (8 cores) and\n");
  std::printf("starpu+2gpu (GTX480+GTX285) vs single-threaded input\n\n");

  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("--- correctness validation (hybrid: kernels really run, CPU "
              "costs measured, GPU costs modeled) ---\n");
  if (host_cores < 8) {
    std::printf("NOTE: this host has %u core(s); the paper testbed has 8.\n"
                "Wall-clock CPU parallelism cannot materialize here, so the\n"
                "hybrid block validates *results*, while the simulation block\n"
                "below reproduces the *figure* from the calibrated models.\n\n",
                host_cores);
  }
  print_block("real", quick ? 256 : 512, starvm::ExecutionMode::kHybrid, true);
  if (!quick) {
    print_block("real", 1024, starvm::ExecutionMode::kHybrid, true);
  }

  std::printf("--- pure simulation at paper scale (calibrated models only) ---\n");
  print_block("paper point", 8192, starvm::ExecutionMode::kPureSim, false);

  std::printf("expected shape: 1 < speedup(starpu) <= 8 < speedup(starpu+2gpu)\n\n");

  // The paper's result used StarPU's default scheduler; how much of the
  // starpu+2gpu bar depends on the policy? (ties FIG5 to ablation ABL1)
  std::printf("--- paper point by scheduler policy (starpu+2gpu, N=8192) ---\n");
  std::printf("  %-8s %14s\n", "policy", "makespan [s]");
  for (const auto scheduler :
       {starvm::SchedulerKind::kEager, starvm::SchedulerKind::kWorkStealing,
        starvm::SchedulerKind::kHeft}) {
    const double t = run_dgemm(kConfigs[2], 8192, starvm::ExecutionMode::kPureSim,
                               false, scheduler);
    std::printf("  %-8s %14.4f\n", std::string(starvm::to_string(scheduler)).c_str(),
                t);
  }
  return 0;
}
