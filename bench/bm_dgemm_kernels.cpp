// ABL6 — DGEMM kernel baselines (DESIGN.md): GFLOPS of the three variants
// that stand in for the paper's GotoBlas2/CuBLAS payloads. The blocked
// kernel is the unit the simulated devices "execute"; the parallel variant
// is the SMP reference.
#include <benchmark/benchmark.h>

#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"

namespace {

void set_gflops(benchmark::State& state, std::size_t n) {
  state.counters["GFLOPS"] = benchmark::Counter(
      kernels::dgemm_flops(n, n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_DgemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    kernels::dgemm_naive(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, n);
}
BENCHMARK(BM_DgemmNaive)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_DgemmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    kernels::dgemm_blocked(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, n);
}
BENCHMARK(BM_DgemmBlocked)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DgemmParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    kernels::dgemm_parallel(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, n);
}
// UseRealTime: the work happens on pool threads; CPU time of the calling
// thread would make the rate meaningless.
BENCHMARK(BM_DgemmParallel)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DgemmBlockSizeSweep(benchmark::State& state) {
  // The tile-size knob of the blocked kernel (fixed N=256).
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 256;
  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    kernels::dgemm_blocked(n, n, n, a.data(), b.data(), c.data(), block);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, n);
}
BENCHMARK(BM_DgemmBlockSizeSweep)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
