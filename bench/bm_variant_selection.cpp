// ABL3 — static pre-selection cost vs repository size (DESIGN.md).
//
// Cascabel's step 2 matches every repository variant's platform patterns
// against the target PDL (paper §IV-C). This microbenchmark sweeps the
// repository size and the target-platform width to show pre-selection
// stays cheap enough to run per compilation.
#include <benchmark/benchmark.h>

#include "cascabel/selection.hpp"
#include "discovery/presets.hpp"
#include "pdl/pattern.hpp"
#include "pdl/well_known.hpp"

namespace {

/// A repository with `n` variants spread over the default platform names.
cascabel::TaskRepository make_repository(int n) {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  const char* platforms[] = {"x86", "smp", "cuda", "opencl", "cell"};
  for (int i = 0; i < n; ++i) {
    cascabel::TaskVariant v;
    // ~8 variants per interface; every interface keeps an x86 fall-back.
    v.pragma.task_interface = "Iface" + std::to_string(i / 8);
    v.pragma.variant_name = "variant" + std::to_string(i);
    v.pragma.target_platforms = {i % 8 == 0 ? "x86" : platforms[i % 5]};
    repo.add_variant(std::move(v));
  }
  return repo;
}

void BM_Preselect(benchmark::State& state) {
  const int variants = static_cast<int>(state.range(0));
  cascabel::TaskRepository repo = make_repository(variants);
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto result = cascabel::preselect(repo, target, diags);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * variants);
}
BENCHMARK(BM_Preselect)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

/// Target width: many workers to scan during matching and mapping.
void BM_PreselectWideTarget(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  cascabel::TaskRepository repo = make_repository(64);
  pdl::Platform target("wide");
  pdl::ProcessingUnit* m = target.add_master("m");
  m->descriptor().add(pdl::props::kArchitecture, "x86");
  for (int i = 0; i < workers; ++i) {
    pdl::ProcessingUnit* w =
        m->add_child(pdl::PuKind::kWorker, "w" + std::to_string(i));
    w->descriptor().add(pdl::props::kArchitecture,
                        i % 4 == 0 ? "gpu" : "x86_core");
  }
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto result = cascabel::preselect(repo, target, diags);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PreselectWideTarget)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);

void BM_PatternMatchOnly(benchmark::State& state) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  for (auto _ : state) {
    auto result = pdl::match(
        "M(ARCHITECTURE=x86)[W(ARCHITECTURE=x86_core)x8,W(ARCHITECTURE=gpu)x2]",
        target);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PatternMatchOnly);

}  // namespace

BENCHMARK_MAIN();
