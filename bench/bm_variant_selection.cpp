// ABL3 — static pre-selection cost vs repository size (DESIGN.md).
//
// Cascabel's step 2 matches every repository variant's platform patterns
// against the target PDL (paper §IV-C). This microbenchmark sweeps the
// repository size and the target-platform width to show pre-selection
// stays cheap enough to run per compilation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cascabel/rt.hpp"
#include "cascabel/selection.hpp"
#include "discovery/presets.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"
#include "pdl/pattern.hpp"
#include "pdl/well_known.hpp"
#include "starvm/bridge.hpp"
#include "starvm/perf_store.hpp"

namespace {

/// A repository with `n` variants spread over the default platform names.
cascabel::TaskRepository make_repository(int n) {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  const char* platforms[] = {"x86", "smp", "cuda", "opencl", "cell"};
  for (int i = 0; i < n; ++i) {
    cascabel::TaskVariant v;
    // ~8 variants per interface; every interface keeps an x86 fall-back.
    v.pragma.task_interface = "Iface" + std::to_string(i / 8);
    v.pragma.variant_name = "variant" + std::to_string(i);
    v.pragma.target_platforms = {i % 8 == 0 ? "x86" : platforms[i % 5]};
    repo.add_variant(std::move(v));
  }
  return repo;
}

void BM_Preselect(benchmark::State& state) {
  const int variants = static_cast<int>(state.range(0));
  cascabel::TaskRepository repo = make_repository(variants);
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto result = cascabel::preselect(repo, target, diags);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * variants);
}
BENCHMARK(BM_Preselect)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

/// Target width: many workers to scan during matching and mapping.
void BM_PreselectWideTarget(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  cascabel::TaskRepository repo = make_repository(64);
  pdl::Platform target("wide");
  pdl::ProcessingUnit* m = target.add_master("m");
  m->descriptor().add(pdl::props::kArchitecture, "x86");
  for (int i = 0; i < workers; ++i) {
    pdl::ProcessingUnit* w =
        m->add_child(pdl::PuKind::kWorker, "w" + std::to_string(i));
    w->descriptor().add(pdl::props::kArchitecture,
                        i % 4 == 0 ? "gpu" : "x86_core");
  }
  for (auto _ : state) {
    pdl::Diagnostics diags;
    auto result = cascabel::preselect(repo, target, diags);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PreselectWideTarget)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);

void BM_PatternMatchOnly(benchmark::State& state) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  for (auto _ : state) {
    auto result = pdl::match(
        "M(ARCHITECTURE=x86)[W(ARCHITECTURE=x86_core)x8,W(ARCHITECTURE=gpu)x2]",
        target);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PatternMatchOnly);

// --- Warm vs cold perf store (the autotuning loop's pay-off) -----------------
//
// Declared ranking prefers the non-fallback smp variant, which here wraps
// the naive O(n^3) kernel. A warm store carrying trustworthy measurements
// flips the choice to the fallback variant wrapping the register-tiled
// kernel. The warm/cold gap is the end-to-end win of persisting the model
// (docs/RUNTIME.md "Persisted performance models"); CI gates it via
// BENCH_pr9_autotune.json.

constexpr std::size_t kAutotuneN = 192;

void autotune_slow_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_naive(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                       ctx.buffer(0));
}

void autotune_fast_exec(const starvm::ExecContext& ctx) {
  const auto& c = ctx.handle(0);
  const auto& a = ctx.handle(1);
  kernels::dgemm_tiled(c.rows(), c.cols(), a.cols(), ctx.buffer(1), ctx.buffer(2),
                       ctx.buffer(0));
}

double autotune_flops(const std::vector<starvm::BufferView>& buffers) {
  const auto& c = *buffers[0].handle;
  const auto& a = *buffers[1].handle;
  return kernels::dgemm_flops(c.rows(), c.cols(), a.cols());
}

cascabel::TaskRepository autotune_repo() {
  cascabel::TaskRepository repo = cascabel::TaskRepository::with_defaults();
  cascabel::TaskVariant slow;
  slow.pragma.task_interface = "Ibench";
  slow.pragma.variant_name = "bench_slow";
  slow.pragma.target_platforms = {"smp"};  // non-fallback: wins declared rank
  repo.add_variant(slow);
  repo.bind(cascabel::BoundImpl{"bench_slow", starvm::DeviceKind::kCpu,
                                autotune_slow_exec, autotune_flops});
  cascabel::TaskVariant fast;
  fast.pragma.task_interface = "Ibench";
  fast.pragma.variant_name = "bench_fast";
  fast.pragma.target_platforms = {"x86"};  // fallback: needs the store to win
  repo.add_variant(fast);
  repo.bind(cascabel::BoundImpl{"bench_fast", starvm::DeviceKind::kCpu,
                                autotune_fast_exec, autotune_flops});
  return repo;
}

[[noreturn]] void state_abort(const std::string& message) {
  std::fprintf(stderr, "autotune bench failed: %s\n", message.c_str());
  std::abort();
}

/// One full translate-and-run round: Context construction (store load +
/// pre-selection), one blocked Ibench call, drain.
void autotune_round(const pdl::Platform& platform, const std::string& store_path,
                    kernels::Matrix& a, kernels::Matrix& b, kernels::Matrix& c) {
  cascabel::rt::Options options;
  options.perf_store_path = store_path;
  cascabel::rt::Context ctx(platform, autotune_repo(), options);
  c.fill(0.0);
  auto status = ctx.execute(
      "Ibench", "",
      {cascabel::rt::arg_matrix(c.data(), kAutotuneN, kAutotuneN,
                                cascabel::AccessMode::kReadWrite,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(a.data(), kAutotuneN, kAutotuneN,
                                cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kBlock),
       cascabel::rt::arg_matrix(b.data(), kAutotuneN, kAutotuneN,
                                cascabel::AccessMode::kRead,
                                cascabel::DistributionKind::kNone)});
  if (!status.ok()) state_abort(status.error().str());
  auto wait_status = ctx.wait();
  if (!wait_status.ok()) state_abort(wait_status.error().str());
}

void BM_VariantSelectionColdStore(benchmark::State& state) {
  const pdl::Platform platform = pdl::discovery::paper_platform_starpu_cpu();
  const std::string path = "/tmp/pdl_bm_autotune_cold.perfstore";
  kernels::Matrix a(kAutotuneN, kAutotuneN), b(kAutotuneN, kAutotuneN),
      c(kAutotuneN, kAutotuneN);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    // Drop the persisted model: every round is a first encounter, so the
    // declared-rank (slow) variant runs.
    std::remove(path.c_str());
    autotune_round(platform, path, a, b, c);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VariantSelectionColdStore)->Unit(benchmark::kMillisecond);

void BM_VariantSelectionWarmStore(benchmark::State& state) {
  const pdl::Platform platform = pdl::discovery::paper_platform_starpu_cpu();
  const std::string path = "/tmp/pdl_bm_autotune_warm.perfstore";
  auto engine_config = starvm::engine_config_from_platform(platform);
  if (!engine_config.ok()) state_abort(engine_config.error().str());
  starvm::perf_store::Store store;
  store.descriptor_hash =
      starvm::perf_store::descriptor_hash(engine_config.value().devices);
  store.entries = {{"bench_slow", 0, 1e-3, 5, 1.0},
                   {"bench_fast", 0, 1e-4, 5, 10.0}};
  kernels::Matrix a(kAutotuneN, kAutotuneN), b(kAutotuneN, kAutotuneN),
      c(kAutotuneN, kAutotuneN);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    // Re-pin the synthetic measurements (engine shutdown re-saves learned
    // rates) so every round loads the identical warm model.
    if (!starvm::perf_store::save(store, path)) state_abort("store save");
    autotune_round(platform, path, a, b, c);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VariantSelectionWarmStore)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
