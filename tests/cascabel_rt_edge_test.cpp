// Edge-path tests of the rt veneer and related glue.
#include <gtest/gtest.h>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "starvm/trace_export.hpp"

namespace cascabel::rt {
namespace {

using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

TaskRepository builtin_repo() {
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  return repo;
}

TEST(ContextEdge, GroupWithNoRunnableImplementationFails) {
  // Only an accelerator variant is usable in group 'gpu', but the target
  // platform has no accelerators at all -> execute must fail cleanly.
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant gpu_only;
  gpu_only.pragma.task_interface = "Ionly";
  gpu_only.pragma.variant_name = "only_gpu";
  gpu_only.pragma.target_platforms = {"x86"};  // select it as fallback...
  repo.add_variant(gpu_only);
  // ...but bind it as an accelerator implementation.
  repo.bind(BoundImpl{"only_gpu", starvm::DeviceKind::kAccelerator,
                      [](const starvm::ExecContext&) {}, nullptr});

  Context ctx(paper_platform_starpu_cpu(), std::move(repo));
  std::vector<double> data(4, 0.0);
  auto status = ctx.execute("Ionly", "",
                            {arg(data.data(), 4, AccessMode::kRead,
                                 DistributionKind::kNone)});
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("no executable implementation"),
            std::string::npos);
}

TEST(ContextEdge, SourceOnlyVariantsAreSkipped) {
  // A selected variant without a bound implementation must not break
  // execution as long as another usable implementation exists.
  TaskRepository repo = builtin_repo();
  TaskVariant unbound;
  unbound.pragma.task_interface = "Ivecadd";
  unbound.pragma.variant_name = "vecadd_sourceonly";
  unbound.pragma.target_platforms = {"smp"};
  repo.add_variant(unbound);  // never bound

  Context ctx(paper_platform_starpu_cpu(), std::move(repo));
  const std::size_t n = 64;
  std::vector<double> a(n, 1.0), b(n, 1.0);
  ASSERT_TRUE(ctx.execute("Ivecadd", "",
                          {arg(a.data(), n, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), n, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(ContextEdge, PureSimContextNeverTouchesData) {
  Options options;
  options.mode = starvm::ExecutionMode::kPureSim;
  Context ctx(paper_platform_starpu_cpu(), builtin_repo(), options);
  const std::size_t n = 128;
  std::vector<double> a(n, 1.0), b(n, 2.0);
  ASSERT_TRUE(ctx.execute("Ivecadd", "",
                          {arg(a.data(), n, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), n, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 1.0);  // untouched
  EXPECT_GT(ctx.stats().makespan_seconds, 0.0);
}

TEST(ContextEdge, StatsFeedTraceExports) {
  Context ctx(paper_platform_starpu_2gpu(), builtin_repo());
  const std::size_t n = 256;
  std::vector<double> a(n, 1.0), b(n, 2.0);
  ASSERT_TRUE(ctx.execute("Ivecadd", "all",
                          {arg(a.data(), n, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), n, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  const auto stats = ctx.stats();
  const std::string json = starvm::to_chrome_trace(stats);
  EXPECT_NE(json.find("Ivecadd["), std::string::npos);
  const std::string gantt = starvm::to_ascii_gantt(stats, 5);  // width clamped
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(ContextEdge, EmptyArgListExecutes) {
  // Tasks without data are legal (pure side-effect codelets).
  TaskRepository repo = TaskRepository::with_defaults();
  int runs = 0;
  TaskVariant v;
  v.pragma.task_interface = "Inop";
  v.pragma.variant_name = "nop";
  v.pragma.target_platforms = {"x86"};
  repo.add_variant(v);
  repo.bind(BoundImpl{"nop", starvm::DeviceKind::kCpu,
                      [&runs](const starvm::ExecContext&) { ++runs; }, nullptr});
  Context ctx(paper_platform_single(), std::move(repo));
  ASSERT_TRUE(ctx.execute("Inop", "", {}).ok());
  EXPECT_TRUE(ctx.wait().ok());
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace cascabel::rt
