// The §IV-D case-study input as a standalone annotated source, for
// cascabelc's CLI (examples/dgemm_pipeline.cpp embeds the same program as
// a raw string for its self-contained demo, so it cannot be fed to the
// translator directly). CI runs `cascabelc --profile` over this file and,
// in a second pass, a fault plan that exhausts the retry budget to force
// a flight-recorder post-mortem dump.
//
// Serial input: double-precision matrix multiplication via an optimized
// library call (our kernels library stands in for GotoBlas2).
#pragma cascabel task : x86 : Idgemm : dgemm_input : ( C: readwrite, A: read, B: read )
void dgemm_serial(double *C, double *A, double *B, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += A[i*n+k] * B[k*n+j];
      C[i*n+j] += sum;
    }
}

int main() {
  const int n = 8192;
  double *C = new double[n*n];
  double *A = new double[n*n];
  double *B = new double[n*n];
#pragma cascabel execute Idgemm : all (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)
  dgemm_serial(C, A, B, n);
  delete[] C; delete[] A; delete[] B;
  return 0;
}
