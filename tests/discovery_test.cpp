#include <gtest/gtest.h>

#include "discovery/device_db.hpp"
#include "discovery/discovery.hpp"
#include "discovery/presets.hpp"
#include "pdl/extension.hpp"
#include "pdl/query.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"

namespace pdl::discovery {
namespace {

TEST(DeviceDb, ContainsPaperGpus) {
  const SimDeviceSpec* gtx480 = find_device("GeForce GTX 480");
  ASSERT_NE(gtx480, nullptr);
  // Exactly paper Listing 2's values.
  EXPECT_EQ(gtx480->compute_units, 15);
  EXPECT_EQ(gtx480->max_work_item_dims, 3);
  EXPECT_EQ(gtx480->global_mem_kb, 1572864);
  EXPECT_EQ(gtx480->local_mem_kb, 48);

  const SimDeviceSpec* gtx285 = find_device("GeForce GTX 285");
  ASSERT_NE(gtx285, nullptr);
  EXPECT_GT(gtx480->peak_dp_gflops, gtx285->peak_dp_gflops);
  EXPECT_EQ(find_device("GeForce 9999"), nullptr);
}

TEST(ParseCpuinfo, ExtractsTopology) {
  const char* kCpuinfo =
      "processor\t: 0\n"
      "vendor_id\t: GenuineIntel\n"
      "model name\t: Intel(R) Xeon(R) CPU X5550 @ 2.67GHz\n"
      "cpu MHz\t\t: 2660.000\n"
      "physical id\t: 0\n"
      "core id\t\t: 0\n"
      "\n"
      "processor\t: 1\n"
      "physical id\t: 0\n"
      "core id\t\t: 1\n"
      "\n"
      "processor\t: 2\n"
      "physical id\t: 1\n"
      "core id\t\t: 0\n"
      "\n"
      "processor\t: 3\n"
      "physical id\t: 1\n"
      "core id\t\t: 1\n";
  const HostCpuInfo info = parse_cpuinfo(kCpuinfo);
  EXPECT_EQ(info.vendor, "GenuineIntel");
  EXPECT_EQ(info.model_name, "Intel(R) Xeon(R) CPU X5550 @ 2.67GHz");
  EXPECT_EQ(info.logical_cpus, 4);
  EXPECT_EQ(info.sockets, 2);
  EXPECT_EQ(info.physical_cores, 4);  // 2 distinct (socket, core) per socket
  EXPECT_DOUBLE_EQ(info.mhz, 2660.0);
}

TEST(ParseCpuinfo, FallsBackGracefullyOnSparseInput) {
  const HostCpuInfo info = parse_cpuinfo("processor : 0\nprocessor : 1\n");
  EXPECT_EQ(info.logical_cpus, 2);
  EXPECT_EQ(info.physical_cores, 2);  // no core ids -> logical count
  EXPECT_EQ(info.sockets, 1);

  const HostCpuInfo empty = parse_cpuinfo("");
  EXPECT_EQ(empty.logical_cpus, 1);
}

TEST(ParseMeminfo, ReadsTotal) {
  EXPECT_EQ(parse_meminfo("MemTotal:       16384 kB\nMemFree: 1 kB\n").total_bytes,
            16384LL * 1024);
  EXPECT_EQ(parse_meminfo("nothing here").total_bytes, 0);
}

TEST(Discovery, HostPlatformIsValidPdl) {
  const Platform host = discover_host();
  Diagnostics diags;
  EXPECT_TRUE(validate(host, diags));
  EXPECT_TRUE(builtin_registry().validate_properties(host, diags));
  ASSERT_EQ(host.masters().size(), 1u);
  EXPECT_FALSE(host.masters()[0]->memory_regions().empty());
  // This test machine definitely has at least one core.
  EXPECT_GE(worker_count(host), 1);
}

TEST(Discovery, GpuWorkerCarriesListing2Properties) {
  const SimDeviceSpec* spec = find_device("GeForce GTX 480");
  auto worker = make_gpu_worker(*spec, "gpu0");
  const Descriptor& d = worker->descriptor();

  const Property* name = d.find(props::kOclDeviceName);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->value, "GeForce GTX 480");
  EXPECT_EQ(name->xsi_type, props::kOclPropertyType);
  EXPECT_FALSE(name->fixed);  // generated at runtime -> unfixed, like the paper

  const Property* mem = d.find(props::kOclGlobalMemSize);
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->value, "1572864");
  EXPECT_EQ(mem->unit, "kB");

  EXPECT_NE(d.find(props::kCudaComputeCapability), nullptr);
  EXPECT_NE(d.find(props::kSustainedGflops), nullptr);
  ASSERT_EQ(worker->memory_regions().size(), 1u);
  EXPECT_TRUE(worker->in_group("gpu"));
}

TEST(Discovery, GpgpuPlatformWiresInterconnects) {
  const Platform p = make_gpgpu_platform(paper_testbed_cpu(), 8,
                                         {"GeForce GTX 480", "GeForce GTX 285"});
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags)) << diags.size();
  EXPECT_EQ(pus_with_property(p, props::kArchitecture, "gpu").size(), 2u);
  EXPECT_EQ(all_interconnects(p).size(), 2u);
  const Interconnect* ic = find_interconnect(p, "0", "gpu1");
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->type, "PCIe");
  EXPECT_TRUE(ic->descriptor.get_double(props::kIcBandwidthGBs).has_value());
}

TEST(Discovery, UnknownDevicesAreSkipped) {
  const Platform p = make_gpgpu_platform(paper_testbed_cpu(), 4, {"No Such GPU"});
  EXPECT_TRUE(pus_with_property(p, props::kArchitecture, "gpu").empty());
}

// Every preset platform must be structurally valid and schema-clean.
class PresetValidityTest : public testing::TestWithParam<int> {};

TEST_P(PresetValidityTest, PresetsAreValid) {
  Platform p = [&] {
    switch (GetParam()) {
      case 0: return paper_platform_single();
      case 1: return paper_platform_starpu_cpu();
      case 2: return paper_platform_starpu_2gpu();
      case 3: return cell_be_platform();
      default: return hierarchical_hybrid_platform();
    }
  }();
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  for (const auto& d : diags) {
    EXPECT_NE(d.severity, Severity::kError) << d.str();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetValidityTest, testing::Range(0, 5));

TEST(Presets, PaperTestbedShapes) {
  EXPECT_EQ(worker_count(paper_platform_single()), 0);
  EXPECT_EQ(worker_count(paper_platform_starpu_cpu()), 8);
  EXPECT_EQ(worker_count(paper_platform_starpu_2gpu()), 10);  // 8 cores + 2 gpus
  EXPECT_EQ(worker_count(cell_be_platform()), 8);

  const Platform gpu = paper_platform_starpu_2gpu();
  const ProcessingUnit* gpu1 = find_pu(gpu, "gpu1");
  ASSERT_NE(gpu1, nullptr);
  EXPECT_EQ(gpu1->descriptor().get(props::kModel), "GeForce GTX 480");
}

}  // namespace
}  // namespace pdl::discovery
