#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "starvm/engine.hpp"

namespace starvm {
namespace {

Codelet make_codelet(std::string name, std::function<void(const ExecContext&)> fn,
                     DeviceKind kind = DeviceKind::kCpu) {
  Codelet c;
  c.name = std::move(name);
  c.impls.push_back(Implementation{kind, std::move(fn)});
  return c;
}

TEST(Engine, RequiresAtLeastOneDevice) {
  EngineConfig config;
  EXPECT_THROW(Engine engine(std::move(config)), std::invalid_argument);
}

TEST(Engine, ExecutesSingleTask) {
  Engine engine(EngineConfig::cpus(1));
  std::vector<double> data = {1, 2, 3, 4};
  DataHandle* h = engine.register_vector(data.data(), data.size(), "v");
  std::atomic<bool> ran{false};
  Codelet c = make_codelet("touch", [&](const ExecContext& ctx) {
    ctx.buffer(0)[0] = 42.0;
    ran = true;
  });
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}, "t"});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(data[0], 42.0);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_GT(stats.makespan_seconds, 0.0);
  ASSERT_EQ(stats.trace.size(), 1u);
  EXPECT_EQ(stats.trace[0].label, "t");
}

TEST(Engine, RejectsInvalidSubmissions) {
  Engine engine(EngineConfig::cpus(1));
  Codelet empty;
  empty.name = "empty";
  EXPECT_THROW(engine.submit(TaskDesc{&empty, {}}), std::invalid_argument);
  EXPECT_THROW(engine.submit(TaskDesc{nullptr, {}}), std::invalid_argument);

  // A codelet only an accelerator can run is rejected on a CPU-only engine.
  Codelet accel_only =
      make_codelet("accel", [](const ExecContext&) {}, DeviceKind::kAccelerator);
  EXPECT_THROW(engine.submit(TaskDesc{&accel_only, {}}), std::invalid_argument);

  Codelet ok = make_codelet("ok", [](const ExecContext&) {});
  EXPECT_THROW(engine.submit(TaskDesc{&ok, {{nullptr, Access::kRead}}}),
               std::invalid_argument);
}

TEST(Engine, RawDependencyOrdersWriterBeforeReader) {
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> data(8, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());

  std::mutex log_mutex;
  std::vector<std::string> log;
  const auto logger = [&](std::string tag) {
    return [&, tag](const ExecContext&) {
      std::lock_guard<std::mutex> lock(log_mutex);
      log.push_back(tag);
    };
  };
  Codelet writer = make_codelet("w", logger("write"));
  Codelet reader = make_codelet("r", logger("read"));

  engine.submit(TaskDesc{&writer, {{h, Access::kWrite}}});
  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "write");  // both reads after the write
}

TEST(Engine, WawAndWarDependenciesSerializeWrites) {
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> data(1, 0.0);
  DataHandle* h = engine.register_vector(data.data(), 1);

  // Each writer appends its index; sequential consistency demands 1,2,3...
  Codelet append = make_codelet("append", [&](const ExecContext& ctx) {
    ctx.buffer(0)[0] = ctx.buffer(0)[0] * 10.0 + 1.0;
  });
  for (int i = 0; i < 6; ++i) {
    engine.submit(TaskDesc{&append, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(data[0], 111111.0);
}

TEST(Engine, SubmitBatchPreservesIntraBatchDependencies) {
  // A batch is wired in order under one lock acquisition; the inferred
  // edges must be identical to submitting the descriptors one by one.
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> data(1, 0.0);
  DataHandle* h = engine.register_vector(data.data(), 1);

  Codelet append = make_codelet("append", [&](const ExecContext& ctx) {
    ctx.buffer(0)[0] = ctx.buffer(0)[0] * 10.0 + 1.0;
  });
  std::vector<TaskDesc> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(TaskDesc{&append, {{h, Access::kReadWrite}}});
  }
  const std::vector<TaskId> ids = engine.submit_batch(std::move(batch));
  ASSERT_EQ(ids.size(), 6u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ids[i - 1] + 1) << "ids must be dense and ordered";
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(data[0], 111111.0);
}

TEST(Engine, SubmitBatchDependsOnEarlierSubmissions) {
  // Cross-boundary RAW: a batch's readers must wait for a writer that was
  // submitted individually before the batch.
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> data(1, 0.0);
  DataHandle* h = engine.register_vector(data.data(), 1);

  Codelet writer = make_codelet("w", [&](const ExecContext& ctx) {
    ctx.buffer(0)[0] = 7.0;
  });
  std::atomic<int> misreads{0};
  Codelet reader = make_codelet("r", [&](const ExecContext& ctx) {
    if (ctx.buffer(0)[0] != 7.0) misreads.fetch_add(1);
  });
  engine.submit(TaskDesc{&writer, {{h, Access::kWrite}}});
  std::vector<TaskDesc> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(TaskDesc{&reader, {{h, Access::kRead}}});
  }
  (void)engine.submit_batch(std::move(batch));
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(misreads.load(), 0);
}

TEST(Engine, SubmitBatchEmptyIsNoop) {
  Engine engine(EngineConfig::cpus(1));
  EXPECT_TRUE(engine.submit_batch({}).empty());
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().tasks_completed, 0u);
}

TEST(Engine, IndependentTasksRunConcurrently) {
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> a(1), b(1), c(1), d(1);
  DataHandle* ha = engine.register_vector(a.data(), 1);
  DataHandle* hb = engine.register_vector(b.data(), 1);
  DataHandle* hc = engine.register_vector(c.data(), 1);
  DataHandle* hd = engine.register_vector(d.data(), 1);

  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  Codelet busy = make_codelet("busy", [&](const ExecContext&) {
    const int now = ++concurrent;
    int old_peak = peak.load();
    while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --concurrent;
  });
  for (DataHandle* h : {ha, hb, hc, hd}) {
    engine.submit(TaskDesc{&busy, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_GE(peak.load(), 2);  // at least some overlap across 4 devices
}

TEST(Engine, PartitionRowsCoversMatrixWithCorrectGeometry) {
  Engine engine(EngineConfig::cpus(2));
  const std::size_t rows = 10, cols = 6;
  std::vector<double> data(rows * cols);
  DataHandle* h = engine.register_matrix(data.data(), rows, cols);
  auto blocks = engine.partition_rows(h, 4);
  ASSERT_EQ(blocks.size(), 4u);  // 3+3+3+1
  EXPECT_TRUE(h->partitioned());

  std::size_t total_rows = 0;
  for (const DataHandle* b : blocks) {
    EXPECT_EQ(b->cols(), cols);
    EXPECT_EQ(b->ld(), cols);
    EXPECT_EQ(b->parent(), h);
    total_rows += b->rows();
  }
  EXPECT_EQ(total_rows, rows);
  EXPECT_EQ(blocks[0]->rows(), 3u);
  EXPECT_EQ(blocks[3]->rows(), 1u);
  // Block pointers tile the buffer contiguously.
  EXPECT_EQ(blocks[1]->ptr(), data.data() + 3 * cols);
}

TEST(Engine, PartitionMoreBlocksThanRowsReturnsRequestedCount) {
  Engine engine(EngineConfig::cpus(1));
  std::vector<double> data(3 * 2);
  DataHandle* h = engine.register_matrix(data.data(), 3, 2);
  // Callers index blocks[i] for i < nblocks; the tail must exist (empty),
  // not silently vanish.
  auto blocks = engine.partition_rows(h, 8);
  ASSERT_EQ(blocks.size(), 8u);
  std::size_t total_rows = 0;
  for (const DataHandle* b : blocks) total_rows += b->rows();
  EXPECT_EQ(total_rows, 3u);
  for (std::size_t i = 3; i < 8; ++i) {
    EXPECT_EQ(blocks[i]->rows(), 0u);
    EXPECT_EQ(blocks[i]->bytes(), 0u);
  }
}

TEST(Engine, PartitionVector) {
  Engine engine(EngineConfig::cpus(1));
  std::vector<double> data(10);
  DataHandle* h = engine.register_vector(data.data(), 10);
  auto blocks = engine.partition_vector(h, 3);
  ASSERT_EQ(blocks.size(), 3u);  // 4+4+2
  EXPECT_EQ(blocks[0]->cols(), 4u);
  EXPECT_EQ(blocks[2]->cols(), 2u);
  EXPECT_EQ(blocks[1]->ptr(), data.data() + 4);
}

TEST(Engine, SubmitOnPartitionedParentIsRejected) {
  Engine engine(EngineConfig::cpus(1));
  std::vector<double> data(8);
  DataHandle* h = engine.register_matrix(data.data(), 4, 2);
  engine.partition_rows(h, 2);
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  EXPECT_THROW(engine.submit(TaskDesc{&c, {{h, Access::kRead}}}),
               std::invalid_argument);

  engine.unpartition(h);
  EXPECT_FALSE(h->partitioned());
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
}

TEST(Engine, BlockTasksRunIndependentlyAcrossBlocks) {
  Engine engine(EngineConfig::cpus(4));
  const std::size_t n = 64;
  std::vector<double> data(n, 1.0);
  DataHandle* h = engine.register_vector(data.data(), n);
  auto blocks = engine.partition_vector(h, 8);
  Codelet dbl = make_codelet("dbl", [](const ExecContext& ctx) {
    for (std::size_t i = 0; i < ctx.handle(0).cols(); ++i) ctx.buffer(0)[i] *= 2.0;
  });
  for (DataHandle* b : blocks) {
    engine.submit(TaskDesc{&dbl, {{b, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  for (double v : data) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Engine, AcceleratorExecutesOnHostButChargesModeledTime) {
  EngineConfig config;
  DeviceSpec accel;
  accel.name = "sim-gpu";
  accel.kind = DeviceKind::kAccelerator;
  accel.sustained_gflops = 100.0;
  accel.link_bandwidth_gbs = 10.0;
  accel.link_latency_us = 1.0;
  config.devices.push_back(accel);
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));

  std::vector<double> data(1024, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());

  Codelet c;
  c.name = "flop";
  c.impls.push_back(Implementation{DeviceKind::kAccelerator, [](const ExecContext& ctx) {
                                     ctx.buffer(0)[0] = 7.0;
                                   }});
  // Pretend this op costs 1e9 flops -> 0.01 s at 100 GFLOPS.
  c.flops = [](const std::vector<BufferView>&) { return 1e9; };
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());

  EXPECT_DOUBLE_EQ(data[0], 7.0);  // really executed (hybrid mode)
  const EngineStats stats = engine.stats();
  ASSERT_EQ(stats.trace.size(), 1u);
  // Modeled exec: 1e9 / (100e9) = 10 ms, far above the real host cost.
  EXPECT_NEAR(stats.trace[0].exec_seconds, 0.01, 1e-6);
  // The read pulled 8 KiB over the modeled link.
  EXPECT_GT(stats.trace[0].transfer_seconds, 0.0);
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.transfer_bytes, 1024u * 8u);
}

TEST(Engine, TransferOnlyWhenReplicaMissing) {
  EngineConfig config;
  DeviceSpec accel;
  accel.kind = DeviceKind::kAccelerator;
  accel.name = "gpu";
  config.devices.push_back(accel);
  Engine engine(std::move(config));

  std::vector<double> data(64, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet reader = make_codelet("r", [](const ExecContext&) {},
                                DeviceKind::kAccelerator);

  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().transfers, 1u);

  // Second read: the replica is already valid on the device.
  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().transfers, 1u);
}

TEST(Engine, WriteInvalidatesOtherReplicas) {
  EngineConfig config;
  DeviceSpec accel;
  accel.kind = DeviceKind::kAccelerator;
  accel.name = "gpu";
  config.devices.push_back(accel);
  DeviceSpec cpu;
  cpu.kind = DeviceKind::kCpu;
  cpu.name = "cpu";
  config.devices.push_back(cpu);
  config.scheduler = SchedulerKind::kEager;
  Engine engine(std::move(config));

  std::vector<double> data(64, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());

  Codelet accel_write = make_codelet("w", [](const ExecContext&) {},
                                     DeviceKind::kAccelerator);
  engine.submit(TaskDesc{&accel_write, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  // Written on the accelerator: its node is the only valid replica.
  EXPECT_FALSE(h->valid_on(kHostNode));

  Codelet cpu_read = make_codelet("r", [](const ExecContext&) {});
  engine.submit(TaskDesc{&cpu_read, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_TRUE(h->valid_on(kHostNode));  // fetched back
  EXPECT_EQ(engine.stats().transfers, 2u);
}

TEST(Engine, WaitForTaskInPureSimDrainsSimulation) {
  EngineConfig config = EngineConfig::cpus(2, 10.0);
  config.mode = ExecutionMode::kPureSim;
  Engine engine(std::move(config));
  std::vector<double> data(1);
  DataHandle* h = engine.register_vector(data.data(), 1);
  Codelet c;
  c.name = "sim";
  c.impls.push_back(Implementation{DeviceKind::kCpu, nullptr});
  c.flops = [](const std::vector<BufferView>&) { return 1e6; };
  const TaskId id = engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait(id));
  EXPECT_FALSE(engine.wait(id + 5));
  EXPECT_GT(engine.stats().makespan_seconds, 0.0);
}

TEST(Engine, PureSimSkipsExecutionButModelsTime) {
  EngineConfig config = EngineConfig::cpus(2, 10.0);  // 10 GFLOPS each
  config.mode = ExecutionMode::kPureSim;
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));

  std::vector<double> data(16, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c;
  c.name = "work";
  c.impls.push_back(Implementation{DeviceKind::kCpu, [](const ExecContext& ctx) {
                                     ctx.buffer(0)[0] = 999.0;  // must NOT run
                                   }});
  c.flops = [](const std::vector<BufferView>&) { return 1e9; };  // 0.1 s at 10 GF

  std::vector<double> other(16, 1.0);
  DataHandle* h2 = engine.register_vector(other.data(), other.size());
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  engine.submit(TaskDesc{&c, {{h2, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());

  EXPECT_DOUBLE_EQ(data[0], 1.0);  // untouched
  const EngineStats stats = engine.stats();
  // Two independent 0.1 s tasks on two devices: makespan ~0.1 s, not 0.2.
  EXPECT_NEAR(stats.makespan_seconds, 0.1, 0.02);
  // And the wall clock barely moved (no real execution).
  EXPECT_LT(stats.wall_seconds, 0.05);
}

TEST(Engine, MakespanReflectsCriticalPathInPureSim) {
  EngineConfig config = EngineConfig::cpus(4, 1.0);  // 1 GFLOPS
  config.mode = ExecutionMode::kPureSim;
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));

  std::vector<double> data(1);
  DataHandle* h = engine.register_vector(data.data(), 1);
  Codelet c;
  c.name = "chain";
  c.impls.push_back(Implementation{DeviceKind::kCpu, nullptr});
  c.flops = [](const std::vector<BufferView>&) { return 1e8; };  // 0.1 s each

  // A chain of 5 dependent tasks: makespan ~0.5 s despite 4 devices.
  for (int i = 0; i < 5; ++i) {
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_NEAR(engine.stats().makespan_seconds, 0.5, 0.05);
}

TEST(Engine, PriorityOrdersReadyTasksUnderEager) {
  EngineConfig config = EngineConfig::cpus(1);
  config.scheduler = SchedulerKind::kEager;
  Engine engine(std::move(config));

  std::mutex order_mutex;
  std::vector<int> order;
  Codelet tag;
  tag.name = "tag";
  // Block the single device so every subsequent task is queued before any
  // is popped; then the pops must follow priority order.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  Codelet blocker = make_codelet("blocker", [&](const ExecContext&) {
    started = true;
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  std::vector<double> dummy(1);
  DataHandle* hd = engine.register_vector(dummy.data(), 1);
  engine.submit(TaskDesc{&blocker, {{hd, Access::kRead}}});
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<std::vector<double>> buffers(4, std::vector<double>(1));
  std::vector<Codelet> codelets;
  codelets.reserve(4);
  const int priorities[] = {0, 5, -3, 2};
  for (int i = 0; i < 4; ++i) {
    codelets.push_back(make_codelet("p" + std::to_string(i),
                                    [&, i](const ExecContext&) {
                                      std::lock_guard<std::mutex> lock(order_mutex);
                                      order.push_back(priorities[i]);
                                    }));
  }
  for (int i = 0; i < 4; ++i) {
    DataHandle* h = engine.register_vector(buffers[static_cast<std::size_t>(i)].data(), 1);
    TaskDesc desc{&codelets[static_cast<std::size_t>(i)], {{h, Access::kRead}}};
    desc.priority = priorities[i];
    engine.submit(std::move(desc));
  }
  release = true;
  EXPECT_TRUE(engine.wait_all().ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{5, 2, 0, -3}));
}

TEST(Engine, WaitForSpecificTask) {
  Engine engine(EngineConfig::cpus(2));
  std::vector<double> a(1), b(1);
  DataHandle* ha = engine.register_vector(a.data(), 1);
  DataHandle* hb = engine.register_vector(b.data(), 1);

  Codelet quick = make_codelet("quick", [](const ExecContext& ctx) {
    ctx.buffer(0)[0] = 1.0;
  });
  Codelet slow = make_codelet("slow", [](const ExecContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.buffer(0)[0] = 2.0;
  });
  const TaskId slow_id = engine.submit(TaskDesc{&slow, {{hb, Access::kWrite}}});
  const TaskId quick_id = engine.submit(TaskDesc{&quick, {{ha, Access::kWrite}}});

  EXPECT_TRUE(engine.wait(quick_id));
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_TRUE(engine.wait(slow_id));
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_FALSE(engine.wait(999));
  EXPECT_FALSE(engine.wait(0));
  EXPECT_TRUE(engine.wait_all().ok());
}

TEST(Engine, ExplicitDependenciesOrderUnrelatedTasks) {
  Engine engine(EngineConfig::cpus(4));
  std::mutex order_mutex;
  std::vector<int> order;
  const auto tagger = [&](int tag) {
    return [&, tag](const ExecContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(tag == 1 ? 20 : 0));
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  Codelet first = make_codelet("first", tagger(1));
  Codelet second = make_codelet("second", tagger(2));
  Codelet third = make_codelet("third", tagger(3));

  // Three tasks on disjoint data: only the explicit edges order them.
  std::vector<double> a(1), b(1), c(1);
  DataHandle* ha = engine.register_vector(a.data(), 1);
  DataHandle* hb = engine.register_vector(b.data(), 1);
  DataHandle* hc = engine.register_vector(c.data(), 1);

  const TaskId t1 = engine.submit(TaskDesc{&first, {{ha, Access::kWrite}}});
  TaskDesc d2{&second, {{hb, Access::kWrite}}};
  d2.depends_on = {t1};
  const TaskId t2 = engine.submit(std::move(d2));
  TaskDesc d3{&third, {{hc, Access::kWrite}}};
  d3.depends_on = {t1, t2};
  engine.submit(std::move(d3));
  EXPECT_TRUE(engine.wait_all().ok());

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ExplicitDependencyOnCompletedOrUnknownTaskIsSatisfied) {
  Engine engine(EngineConfig::cpus(1));
  std::vector<double> a(1);
  DataHandle* h = engine.register_vector(a.data(), 1);
  Codelet c = make_codelet("c", [](const ExecContext& ctx) {
    ctx.buffer(0)[0] += 1.0;
  });
  const TaskId done = engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());

  TaskDesc desc{&c, {{h, Access::kReadWrite}}};
  desc.depends_on = {done, 424242, 0};  // completed + unknown + invalid
  engine.submit(std::move(desc));
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(a[0], 2.0);
}

TEST(Engine, HostWriteInvalidatesDeviceReplicas) {
  EngineConfig config;
  DeviceSpec accel;
  accel.kind = DeviceKind::kAccelerator;
  accel.name = "gpu";
  config.devices.push_back(accel);
  Engine engine(std::move(config));

  std::vector<double> data(64, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet reader = make_codelet("r", [](const ExecContext&) {},
                                DeviceKind::kAccelerator);
  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().transfers, 1u);

  // Without host_write a second read reuses the replica; after a declared
  // host write it must transfer again.
  engine.host_write(h);
  EXPECT_TRUE(h->valid_on(kHostNode));
  EXPECT_FALSE(h->valid_on(1));
  engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().transfers, 2u);
}

TEST(Engine, StatsAccumulatePerDevice) {
  Engine engine(EngineConfig::cpus(2));
  std::vector<double> a(1), b(1);
  DataHandle* ha = engine.register_vector(a.data(), 1);
  DataHandle* hb = engine.register_vector(b.data(), 1);
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  for (int i = 0; i < 10; ++i) {
    engine.submit(TaskDesc{&c, {{i % 2 ? ha : hb, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 10u);
  std::uint64_t total = 0;
  for (const auto& d : stats.devices) total += d.tasks_run;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(stats.trace.size(), 10u);
}

TEST(Engine, WatchdogRejectsAttemptsExceedingModeledEstimate) {
  // Pure sim: exec cost == model estimate + injected delay, so the
  // watchdog decision is deterministic. A 1 s delay on attempt 1 blows the
  // max(0.01 s, estimate * slack) limit; attempt 2 runs undelayed and fits.
  EngineConfig config = EngineConfig::cpus(1, /*sustained_gflops=*/1.0);
  config.mode = ExecutionMode::kPureSim;
  config.fault_tolerance.watchdog_slack = 2.0;
  auto plan = FaultPlan::parse("delay:ms=1000,task=1,attempts=1");
  ASSERT_TRUE(plan.ok());
  config.fault_plan =
      std::make_shared<const FaultPlan>(std::move(plan).value());
  Engine engine(std::move(config));

  std::vector<double> data(8, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  c.flops = [](const std::vector<BufferView>&) { return 1e6; };  // ~1 ms
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.task_failures, 1u);
  EXPECT_EQ(stats.retries, 1u);
  bool saw_timeout_event = false;
  for (const auto& e : stats.fault_events) {
    if (e.kind == FaultEvent::Kind::kTimeout) saw_timeout_event = true;
  }
  EXPECT_TRUE(saw_timeout_event);
}

TEST(Engine, WatchdogOffByDefault) {
  // Same delayed task, default config: the delay is just slow, not fatal.
  EngineConfig config = EngineConfig::cpus(1, 1.0);
  config.mode = ExecutionMode::kPureSim;
  auto plan = FaultPlan::parse("delay:ms=1000");
  ASSERT_TRUE(plan.ok());
  config.fault_plan =
      std::make_shared<const FaultPlan>(std::move(plan).value());
  Engine engine(std::move(config));
  std::vector<double> data(8, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.task_failures, 0u);
  EXPECT_GE(stats.makespan_seconds, 1.0);  // the delay is on the clock
}

}  // namespace
}  // namespace starvm
