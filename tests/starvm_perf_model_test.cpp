#include <gtest/gtest.h>

#include "starvm/perf_model.hpp"

#include "util/string_util.hpp"

namespace starvm {
namespace {

TEST(PerfModel, AnalyticFallbackUsesFlopsAndRate) {
  PerfModel model;
  // 1e9 flops at 10 GFLOPS -> 0.1 s.
  EXPECT_DOUBLE_EQ(model.estimate("k", 0, 1e9, 10.0), 0.1);
}

TEST(PerfModel, DefaultEstimateWithoutAnyInformation) {
  PerfModel model;
  EXPECT_DOUBLE_EQ(model.estimate("k", 0, 0.0, 10.0), 1e-3);
  EXPECT_DOUBLE_EQ(model.estimate("k", 0, 1e9, 0.0), 1e-3);
}

TEST(PerfModel, HistoryOverridesAnalytic) {
  PerfModel model;
  model.observe("k", 0, 0.5);
  EXPECT_DOUBLE_EQ(model.estimate("k", 0, 1e9, 10.0), 0.5);
  EXPECT_EQ(model.samples("k", 0), 1u);
}

TEST(PerfModel, EmaConvergesTowardRecentObservations) {
  PerfModel model;
  model.observe("k", 0, 1.0);
  for (int i = 0; i < 50; ++i) model.observe("k", 0, 0.1);
  EXPECT_NEAR(model.estimate("k", 0, 0, 0), 0.1, 0.01);
  EXPECT_EQ(model.samples("k", 0), 51u);
}

TEST(PerfModel, HistoriesAreKeyedPerCodeletAndDevice) {
  PerfModel model;
  model.observe("a", 0, 0.1);
  model.observe("a", 1, 0.2);
  model.observe("b", 0, 0.3);
  EXPECT_DOUBLE_EQ(model.estimate("a", 0, 0, 0), 0.1);
  EXPECT_DOUBLE_EQ(model.estimate("a", 1, 0, 0), 0.2);
  EXPECT_DOUBLE_EQ(model.estimate("b", 0, 0, 0), 0.3);
  EXPECT_EQ(model.samples("b", 1), 0u);
}

TEST(PerfModel, SaveLoadRoundTrip) {
  PerfModel model;
  model.observe("dgemm", 0, 0.125);
  model.observe("dgemm", 0, 0.25);
  model.observe("potrf", 3, 1.5e-3);

  const std::string path = testing::TempDir() + "/perf_model_test.calib";
  ASSERT_TRUE(model.save(path));

  PerfModel restored;
  ASSERT_TRUE(restored.load(path));
  EXPECT_DOUBLE_EQ(restored.estimate("dgemm", 0, 0, 0),
                   model.estimate("dgemm", 0, 0, 0));
  EXPECT_EQ(restored.samples("dgemm", 0), 2u);
  EXPECT_DOUBLE_EQ(restored.estimate("potrf", 3, 0, 0), 1.5e-3);
}

TEST(PerfModel, LoadMergesIntoExistingHistory) {
  PerfModel a;
  a.observe("x", 0, 1.0);
  const std::string path = testing::TempDir() + "/perf_model_merge.calib";
  ASSERT_TRUE(a.save(path));

  PerfModel b;
  b.observe("y", 1, 2.0);
  ASSERT_TRUE(b.load(path));
  EXPECT_DOUBLE_EQ(b.estimate("x", 0, 0, 0), 1.0);  // loaded
  EXPECT_DOUBLE_EQ(b.estimate("y", 1, 0, 0), 2.0);  // kept
}

TEST(PerfModel, LoadRejectsMissingOrMalformedFiles) {
  PerfModel model;
  EXPECT_FALSE(model.load("/no/such/calibration.file"));
  const std::string path = testing::TempDir() + "/perf_model_bad.calib";
  ASSERT_TRUE(pdl::util::write_file(path, "dgemm zero not-a-number\n"));
  EXPECT_FALSE(model.load(path));
}

TEST(TransferSeconds, LatencyPlusBandwidth) {
  // 1 GB over 1 GB/s with 0 latency: 1 s.
  EXPECT_NEAR(transfer_seconds(1'000'000'000, 1.0, 0.0), 1.0, 1e-9);
  // Latency dominates tiny messages.
  EXPECT_NEAR(transfer_seconds(8, 10.0, 100.0), 1e-4, 1e-6);
  // Degenerate bandwidth: only latency.
  EXPECT_DOUBLE_EQ(transfer_seconds(1024, 0.0, 5.0), 5e-6);
}

}  // namespace
}  // namespace starvm
