#include <gtest/gtest.h>

#include "discovery/presets.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

/// The Figure-2 shape: M(m0) -> { H(h0) -> {W(w00)x4, W(w01:gpu)},
///                                H(h1) -> {W(w10)x4}, W(w2:gpu) }.
Platform figure2_platform() { return discovery::hierarchical_hybrid_platform(); }

TEST(Query, AllPusIsPreOrder) {
  Platform p = figure2_platform();
  const auto pus = all_pus(p);
  ASSERT_EQ(pus.size(), 7u);
  EXPECT_EQ(pus[0]->id(), "m0");
  EXPECT_EQ(pus[1]->id(), "h0");
  EXPECT_EQ(pus[2]->id(), "w00");
  EXPECT_EQ(pus[3]->id(), "w01");
  EXPECT_EQ(pus[4]->id(), "h1");
  EXPECT_EQ(pus[5]->id(), "w10");
  EXPECT_EQ(pus[6]->id(), "w2");
}

TEST(Query, SubtreeIncludesRoot) {
  Platform p = figure2_platform();
  const ProcessingUnit* h0 = find_pu(p, "h0");
  ASSERT_NE(h0, nullptr);
  const auto pus = subtree(*h0);
  ASSERT_EQ(pus.size(), 3u);
  EXPECT_EQ(pus[0]->id(), "h0");
}

TEST(Query, VisitStopsEarly) {
  Platform p = figure2_platform();
  int visited = 0;
  visit(p, [&](const ProcessingUnit&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(Query, FindPuById) {
  Platform p = figure2_platform();
  EXPECT_NE(find_pu(p, "w10"), nullptr);
  EXPECT_EQ(find_pu(p, "nope"), nullptr);
}

TEST(Query, PusOfKind) {
  Platform p = figure2_platform();
  EXPECT_EQ(pus_of_kind(p, PuKind::kMaster).size(), 1u);
  EXPECT_EQ(pus_of_kind(p, PuKind::kHybrid).size(), 2u);
  EXPECT_EQ(pus_of_kind(p, PuKind::kWorker).size(), 4u);
}

TEST(Query, PusWithPropertyIsCaseInsensitiveOnValue) {
  Platform p = figure2_platform();
  EXPECT_EQ(pus_with_property(p, props::kArchitecture, "GPU").size(), 2u);
  EXPECT_EQ(pus_with_property(p, props::kArchitecture, "x86_core").size(), 2u);
  EXPECT_TRUE(pus_with_property(p, props::kArchitecture, "spe").empty());
}

TEST(Query, WorkerCountSumsQuantities) {
  Platform p = figure2_platform();
  // w00 x4 + w01 + w10 x4 + w2 = 10
  EXPECT_EQ(worker_count(p), 10);
  const ProcessingUnit* h1 = find_pu(p, "h1");
  EXPECT_EQ(worker_count(*h1), 4);
}

TEST(Query, TotalPuCountAndDepth) {
  Platform p = figure2_platform();
  // m0 + h0 + 4 + 1 + h1 + 4 + 1 = 13
  EXPECT_EQ(total_pu_count(p), 13);
  EXPECT_EQ(hierarchy_depth(p), 2);

  Platform empty;
  EXPECT_EQ(hierarchy_depth(empty), -1);
  EXPECT_EQ(total_pu_count(empty), 0);
}

TEST(Query, GroupMembersAndGroupList) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  EXPECT_EQ(group_members(p, "gpu").size(), 2u);
  EXPECT_EQ(group_members(p, "cpu").size(), 1u);  // one Worker node (qty 8)
  EXPECT_EQ(group_members(p, "all").size(), 3u);
  EXPECT_TRUE(group_members(p, "nothing").empty());

  const auto groups = logic_groups(p);
  EXPECT_NE(std::find(groups.begin(), groups.end(), "gpu"), groups.end());
  EXPECT_NE(std::find(groups.begin(), groups.end(), "cpu"), groups.end());
}

TEST(Query, ResolvePropertyInheritsUpward) {
  Platform p("t");
  ProcessingUnit* m = p.add_master("m");
  m->descriptor().add(props::kCompiler, "gcc");
  ProcessingUnit* h = m->add_child(PuKind::kHybrid, "h");
  ProcessingUnit* w = h->add_child(PuKind::kWorker, "w");
  w->descriptor().add(props::kArchitecture, "gpu");

  // Own property wins; missing ones resolve upward.
  EXPECT_EQ(resolved_value(*w, props::kArchitecture), "gpu");
  EXPECT_EQ(resolved_value(*w, props::kCompiler), "gcc");
  EXPECT_EQ(resolved_value(*w, "MISSING"), "");

  // Closer declarations shadow farther ones.
  h->descriptor().add(props::kCompiler, "clang");
  EXPECT_EQ(resolved_value(*w, props::kCompiler), "clang");
}

TEST(Query, FindInterconnectSearchesBothDirections) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  EXPECT_NE(find_interconnect(p, "0", "gpu1"), nullptr);
  EXPECT_NE(find_interconnect(p, "gpu1", "0"), nullptr);
  EXPECT_EQ(find_interconnect(p, "gpu1", "gpu2"), nullptr);
  EXPECT_EQ(all_interconnects(p).size(), 2u);
}

TEST(Query, DataPathUsesDeclaredInterconnect) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  const auto path = data_path(p, "0", "gpu1");
  ASSERT_EQ(path.size(), 1u);
  EXPECT_NE(path[0].interconnect, nullptr);
  EXPECT_EQ(path[0].interconnect->type, "PCIe");
}

TEST(Query, DataPathRoutesThroughLowestCommonAncestor) {
  Platform p = figure2_platform();
  // w00 -> w10: up to h0, up to m0, down to h1, down to w10.
  const auto path = data_path(p, "w00", "w10");
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0].from->id(), "w00");
  EXPECT_EQ(path[0].to->id(), "h0");
  EXPECT_EQ(path[1].to->id(), "m0");
  EXPECT_EQ(path[2].to->id(), "h1");
  EXPECT_EQ(path[3].to->id(), "w10");
  // No interconnects are declared in this platform: control-link hops.
  for (const auto& hop : path) EXPECT_EQ(hop.interconnect, nullptr);
}

TEST(Query, DataPathBetweenGpusGoesViaHost) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  const auto path = data_path(p, "gpu1", "gpu2");
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].to->id(), "0");
  // Each hop reuses the declared PCIe link.
  EXPECT_NE(path[0].interconnect, nullptr);
  EXPECT_NE(path[1].interconnect, nullptr);
}

TEST(Query, DataPathSecondsUsesIcDescriptors) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  // Host -> gpu1 over the declared PCIe link: 5.6 GB/s, 12 us.
  const std::size_t bytes = 56 * 1000 * 1000;  // 10 ms at 5.6 GB/s
  auto seconds = data_path_seconds(p, "0", "gpu1", bytes);
  ASSERT_TRUE(seconds.has_value());
  EXPECT_NEAR(*seconds, 0.010 + 12e-6, 1e-6);
}

TEST(Query, DataPathSecondsSumsHops) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  // gpu1 -> gpu2 routes through the host: both PCIe links traversed.
  auto direct = data_path_seconds(p, "0", "gpu1", 1 << 20);
  auto bounced = data_path_seconds(p, "gpu1", "gpu2", 1 << 20);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(bounced.has_value());
  EXPECT_GT(*bounced, *direct);
}

TEST(Query, DataPathSecondsDefaultsForControlLinks) {
  Platform p = figure2_platform();  // no interconnects declared
  auto seconds = data_path_seconds(p, "w00", "w10", 1000, 1.0, 10.0);
  ASSERT_TRUE(seconds.has_value());
  // 4 control hops at 10 us + 1 us each.
  EXPECT_NEAR(*seconds, 4 * (10e-6 + 1e-6), 1e-9);
}

TEST(Query, DataPathSecondsEdgeCases) {
  Platform p = figure2_platform();
  EXPECT_EQ(data_path_seconds(p, "m0", "m0", 1 << 20), 0.0);
  EXPECT_FALSE(data_path_seconds(p, "m0", "ghost", 1).has_value());
}

TEST(Query, DataPathDegenerateCases) {
  Platform p = figure2_platform();
  EXPECT_TRUE(data_path(p, "m0", "m0").empty());
  EXPECT_TRUE(data_path(p, "m0", "ghost").empty());

  // Two masters without interconnects: unreachable.
  Platform q("two");
  q.add_master("a");
  q.add_master("b");
  EXPECT_TRUE(data_path(q, "a", "b").empty());
}

}  // namespace
}  // namespace pdl
