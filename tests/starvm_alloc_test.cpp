// Allocation budget for the submission hot path.
//
// The lock-split engine amortizes node and handle storage through
// chunked arenas (detail::Arena) and caches perf-model rows per codelet,
// so steady-state submission must average only a few heap allocations
// per task (the TaskDesc buffer vector and occasional arena/queue
// growth). This test counts global operator new calls around a pure-sim
// submit loop and fails if the average regresses — e.g. a reintroduced
// per-task map lookup, string build, or candidate-vector copy.
//
// Built as its own binary (test_starvm_alloc) so the interposed
// operator new cannot perturb the rest of the suite, and skipped under
// sanitizers, which own the allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "starvm/engine.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PDL_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PDL_UNDER_SANITIZER 1
#endif
#endif
#ifndef PDL_UNDER_SANITIZER
#define PDL_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

#if !PDL_UNDER_SANITIZER
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#endif  // !PDL_UNDER_SANITIZER

namespace starvm {
namespace {

TEST(AllocBudget, SubmissionAveragesFewAllocationsPerTask) {
  if (PDL_UNDER_SANITIZER) {
    GTEST_SKIP() << "sanitizer owns the allocator";
  }
  constexpr int kTasks = 2000;

  // Pure simulation: no worker threads, so the count is deterministic
  // up to arena/queue doubling and measures only the submit path.
  EngineConfig config = EngineConfig::cpus(4);
  config.mode = ExecutionMode::kPureSim;
  Engine engine(std::move(config));

  Codelet noop;
  noop.name = "noop";
  noop.impls.push_back({DeviceKind::kCpu, nullptr});

  std::vector<std::vector<double>> buffers(kTasks, std::vector<double>(1));
  std::vector<DataHandle*> handles(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    handles[static_cast<std::size_t>(i)] =
        engine.register_vector(buffers[static_cast<std::size_t>(i)].data(), 1);
  }

  // Warm up: first submissions fault in the perf-model row, scheduler
  // vectors, and the first arena chunks.
  for (int i = 0; i < 64; ++i) {
    engine.submit(
        TaskDesc{&noop, {{handles[static_cast<std::size_t>(i)], Access::kReadWrite}}});
  }
  ASSERT_TRUE(engine.wait_all().ok());

  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 64; i < kTasks; ++i) {
    engine.submit(
        TaskDesc{&noop, {{handles[static_cast<std::size_t>(i)], Access::kReadWrite}}});
  }
  ASSERT_TRUE(engine.wait_all().ok());
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);

  const double per_task =
      static_cast<double>(after - before) / static_cast<double>(kTasks - 64);
  RecordProperty("allocs_per_task", static_cast<int>(per_task * 100));
  // Budget: TaskDesc's buffer vector (1) + handle-name string path +
  // amortized arena/trace growth. Seed behaviour was ~3; fail well before
  // a per-task map/string/vector regression (each adds >= 1).
  EXPECT_LT(per_task, 5.0) << "allocations per submitted task regressed";
}

}  // namespace
}  // namespace starvm
