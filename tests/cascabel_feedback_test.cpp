#include <gtest/gtest.h>

#include "cascabel/feedback.hpp"
#include "discovery/presets.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"
#include "starvm/bridge.hpp"

namespace cascabel {
namespace {

/// Stats as if device `name` ran `flops` of work in `busy` seconds.
starvm::EngineStats stats_for(std::initializer_list<
                              std::tuple<const char*, double, double>> devices) {
  starvm::EngineStats stats;
  starvm::DeviceId id = 0;
  for (const auto& [name, flops, busy] : devices) {
    stats.devices.push_back(
        starvm::DeviceStats{name, starvm::DeviceKind::kCpu, 1, busy, 0.0});
    stats.trace.push_back(
        starvm::TaskTrace{1, "t", id, 0.0, busy, 0.0, busy, flops});
    ++id;
  }
  return stats;
}

TEST(Feedback, AnnotatesMeasuredGflops) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  // Two devices from the cpu_cores PU, 5 GFLOPS observed each.
  const auto stats =
      stats_for({{"cpu_cores#0", 5e9, 1.0}, {"cpu_cores#1", 1e10, 2.0}});
  RefineReport report;
  pdl::Platform refined = refine_platform(target, stats, &report);
  EXPECT_EQ(report.pus_updated, 1);

  const pdl::ProcessingUnit* cores = pdl::find_pu(refined, "cpu_cores");
  ASSERT_NE(cores, nullptr);
  const pdl::Property* measured =
      cores->descriptor().find(pdl::props::kMeasuredGflops);
  ASSERT_NE(measured, nullptr);
  EXPECT_FALSE(measured->fixed);  // runtime-instantiated => unfixed
  EXPECT_NEAR(measured->as_double().value(), 5.0, 1e-6);  // 15e9 / 3.0s
}

TEST(Feedback, OriginalPlatformUntouched) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  const auto stats = stats_for({{"cpu_cores#0", 5e9, 1.0}});
  refine_platform(target, stats);
  EXPECT_EQ(pdl::find_pu(target, "cpu_cores")
                ->descriptor()
                .find(pdl::props::kMeasuredGflops),
            nullptr);
}

TEST(Feedback, FixedSustainedIsNotOverwritten) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();  // fixed=true
  const auto stats = stats_for({{"cpu_cores#0", 2e9, 1.0}});
  RefineReport report;
  pdl::Platform refined = refine_platform(target, stats, &report);
  EXPECT_EQ(report.sustained_updated, 0);
  EXPECT_EQ(pdl::find_pu(refined, "cpu_cores")
                ->descriptor()
                .get(pdl::props::kSustainedGflops),
            "9.8");
}

TEST(Feedback, UnfixedSustainedIsReinstantiated) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  auto* cores =
      const_cast<pdl::ProcessingUnit*>(pdl::find_pu(target, "cpu_cores"));
  cores->descriptor().find(pdl::props::kSustainedGflops)->fixed = false;

  const auto stats = stats_for({{"cpu_cores#0", 2e9, 1.0}});
  RefineReport report;
  pdl::Platform refined = refine_platform(target, stats, &report);
  EXPECT_EQ(report.sustained_updated, 1);
  EXPECT_NEAR(pdl::find_pu(refined, "cpu_cores")
                  ->descriptor()
                  .get_double(pdl::props::kSustainedGflops)
                  .value(),
              2.0, 1e-6);
}

TEST(Feedback, MasterDeviceNameMapsBack) {
  pdl::Platform target = pdl::discovery::paper_platform_single();
  const auto stats = stats_for({{"master:0", 3e9, 1.0}});
  RefineReport report;
  pdl::Platform refined = refine_platform(target, stats, &report);
  EXPECT_EQ(report.pus_updated, 1);
  EXPECT_NE(pdl::find_pu(refined, "0")->descriptor().find(
                pdl::props::kMeasuredGflops),
            nullptr);
}

TEST(Feedback, DevicesWithoutFlopsAreSkipped) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  const auto stats = stats_for({{"cpu_cores#0", 0.0, 1.0}});
  RefineReport report;
  refine_platform(target, stats, &report);
  EXPECT_EQ(report.pus_updated, 0);
}

TEST(Feedback, UnknownDeviceNamesAreIgnored) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  const auto stats = stats_for({{"mystery#0", 1e9, 1.0}});
  RefineReport report;
  refine_platform(target, stats, &report);
  EXPECT_EQ(report.pus_updated, 0);
}

TEST(Feedback, RepeatedRefinementUpdatesInPlace) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  pdl::Platform once =
      refine_platform(target, stats_for({{"cpu_cores#0", 4e9, 1.0}}));
  pdl::Platform twice =
      refine_platform(once, stats_for({{"cpu_cores#0", 8e9, 1.0}}));
  const pdl::ProcessingUnit* cores = pdl::find_pu(twice, "cpu_cores");
  // Only one MEASURED_GFLOPS property, holding the latest value.
  int count = 0;
  for (const auto& p : cores->descriptor().properties()) {
    count += p.name == pdl::props::kMeasuredGflops;
  }
  EXPECT_EQ(count, 1);
  EXPECT_NEAR(cores->descriptor().get_double(pdl::props::kMeasuredGflops).value(),
              8.0, 1e-6);
}

TEST(Feedback, BridgePrefersMeasuredRate) {
  pdl::Platform target = pdl::discovery::paper_platform_starpu_cpu();
  pdl::Platform refined =
      refine_platform(target, stats_for({{"cpu_cores#0", 3e9, 1.0}}));
  auto config = starvm::engine_config_from_platform(refined);
  ASSERT_TRUE(config.ok());
  // All 8 CPU devices now carry the measured 3.0 instead of 9.8.
  for (const auto& d : config.value().devices) {
    EXPECT_NEAR(d.sustained_gflops, 3.0, 1e-6) << d.name;
  }
}

}  // namespace
}  // namespace cascabel
