// starmc explorer tests (docs/MODEL_CHECKING.md): exhaustive exploration of
// the committed fixture DAGs on 2–3 devices with and without fault plans,
// the DPOR-vs-naive reduction regression, the seeded lost-wakeup
// counterexample, byte-stable replay, attempt-chain preservation, and the
// interleaving-sensitive engine scenarios both natively and under the
// explorer.
#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/graph_io.hpp"
#include "mc/explorer.hpp"
#include "mc/graph_program.hpp"
#include "mc/invariants.hpp"
#include "mc/report.hpp"
#include "starvm/engine.hpp"
#include "starvm/scheduler.hpp"

namespace {

using mc::Explorer;
using mc::Finding;
using mc::Options;
using mc::Program;
using mc::Result;

std::string fixture(const std::string& name) {
  return std::string(PDL_SOURCE_DIR) + "/tests/fixtures/" + name;
}

starvm::TaskGraph load(const std::string& name) {
  auto graph = analysis::load_graph_file(fixture(name));
  EXPECT_TRUE(graph.ok()) << (graph.ok() ? "" : graph.error().str());
  return std::move(graph).value();
}

Program graph_program(const std::string& name, int devices,
                      const std::string& fault_plan = {}) {
  mc::GraphProgramOptions options;
  options.devices = devices;
  options.fault_plan = fault_plan;
  auto program = mc::make_graph_program(load(name), options);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().str());
  return std::move(program).value();
}

std::string findings_str(const Result& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.rule + ": " + f.message + " trace " + mc::format_trace(f.trace) +
           "\n";
  }
  return out;
}

// --- Exhaustive exploration of the fixture DAGs ------------------------------

TEST(McExplorer, DiamondTwoDevicesClean) {
  Explorer explorer(graph_program("diamond.graph", 2), Options{});
  const Result result = explorer.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.terminals, 1u);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

TEST(McExplorer, DiamondThreeDevicesClean) {
  Explorer explorer(graph_program("diamond.graph", 3), Options{});
  const Result result = explorer.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

TEST(McExplorer, DiamondWithFaultPlanClean) {
  // Task/attempt-scoped plan: fires identically on every schedule, so the
  // serial-equivalence check stays meaningful. Task 3 fails once and is
  // retried; the failed attempt never executes the kernel, so outputs
  // still match the canonical run.
  Explorer explorer(graph_program("diamond.graph", 2, "fail:task=3,attempts=1"),
                    Options{});
  const Result result = explorer.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
  // The plan must actually have fired on the canonical run.
  const mc::RunOutcome canonical = explorer.replay({});
  EXPECT_GE(canonical.stats.retries, 1u);
}

TEST(McExplorer, ForkJoinTwoDevicesClean) {
  Explorer explorer(graph_program("forkjoin.graph", 2), Options{});
  const Result result = explorer.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

TEST(McExplorer, AliasedWawBothOrdersProduceIdenticalBytes) {
  // Two unordered writers over overlapping registrations: every explored
  // interleaving must produce identical buffer bytes (the kernel's writes
  // are exact commutative additions), or A602 fires.
  Explorer explorer(graph_program("aliased_waw.graph", 2), Options{});
  const Result result = explorer.explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.terminals, 1u);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

// --- DPOR reduction regression ----------------------------------------------

TEST(McExplorer, DporReducesDiamondStateCountAtLeastFiveFold) {
  const Program program = graph_program("diamond.graph", 2);
  Options dpor;
  Options naive;
  naive.dpor = false;
  naive.replay_check = false;
  const Result reduced = Explorer(program, dpor).explore();
  const Result full = Explorer(program, naive).explore();
  ASSERT_FALSE(reduced.truncated);
  ASSERT_FALSE(full.truncated);
  ASSERT_GT(reduced.terminals, 0u);
  const double ratio = static_cast<double>(full.terminals) /
                       static_cast<double>(reduced.terminals);
  RecordProperty("naive_terminals", static_cast<int>(full.terminals));
  RecordProperty("dpor_terminals", static_cast<int>(reduced.terminals));
  std::printf("state counts: naive %zu terminals / dpor %zu terminals = %.1fx "
              "(naive %zu runs, dpor %zu runs)\n",
              full.terminals, reduced.terminals, ratio, full.runs,
              reduced.runs);
  EXPECT_GE(ratio, 5.0);
  EXPECT_LT(reduced.runs, full.runs);
  // Both modes must agree that the engine is correct.
  EXPECT_TRUE(reduced.findings.empty()) << findings_str(reduced);
  EXPECT_TRUE(full.findings.empty()) << findings_str(full);
}

// --- Seeded lost-wakeup bug --------------------------------------------------

// A deliberately broken scheduler decorator: swallows one push, modeling
// the class of bug the engine's sleeper-count guard exists to prevent (a
// ready task whose wakeup is lost). The explorer must catch it as A601
// with a replayable counterexample.
class LimboScheduler final : public starvm::detail::Scheduler {
 public:
  LimboScheduler(std::unique_ptr<starvm::detail::Scheduler> inner,
                 int swallow_push)
      : inner_(std::move(inner)), swallow_push_(swallow_push) {}

  void push(starvm::detail::TaskNode* task) override {
    if (++pushes_ == swallow_push_) return;  // the lost wakeup
    inner_->push(task);
  }
  starvm::detail::TaskNode* pop(starvm::DeviceId device) override {
    return inner_->pop(device);
  }
  starvm::detail::TaskNode* peek(starvm::DeviceId device) const override {
    return inner_->peek(device);
  }
  starvm::detail::TaskNode* pop_earliest(starvm::DeviceId* device) override {
    return inner_->pop_earliest(device);
  }
  void on_device_time_advanced(starvm::DeviceId device) override {
    inner_->on_device_time_advanced(device);
  }
  bool empty() const override { return inner_->empty(); }
  std::size_t size() const override { return inner_->size(); }
  std::vector<starvm::detail::TaskNode*> drain_device(
      starvm::DeviceId device) override {
    return inner_->drain_device(device);
  }

 private:
  std::unique_ptr<starvm::detail::Scheduler> inner_;
  int swallow_push_ = 0;
  int pushes_ = 0;
};

TEST(McExplorer, SeededLostWakeupCaughtAsReplayableA601) {
  Program program = graph_program("diamond.graph", 2);
  const auto base_config = program.make_config;
  program.make_config = [base_config]() {
    starvm::EngineConfig config = base_config();
    config.wrap_scheduler =
        [](std::unique_ptr<starvm::detail::Scheduler> inner) {
          return std::unique_ptr<starvm::detail::Scheduler>(
              new LimboScheduler(std::move(inner), 3));
        };
    return config;
  };
  // The swallowed push breaks the output too; only the accounting
  // invariant is under test here.
  Options options;
  options.check_serial = false;

  Explorer explorer(program, options);
  const Result result = explorer.explore();
  const auto found = std::find_if(
      result.findings.begin(), result.findings.end(),
      [](const Finding& f) { return f.rule == "A601-deadlock"; });
  ASSERT_NE(found, result.findings.end()) << findings_str(result);

  // The counterexample replays: a fresh engine driven by the recorded
  // decision vector reproduces the stuck state, and the replay leaves a
  // flight-recorder post-mortem behind (the starmc --trace-out path).
  const std::string prefix = testing::TempDir() + "mc_lost_wakeup_cex";
  const mc::RunOutcome replayed = explorer.replay(found->trace, prefix);
  EXPECT_LT(replayed.stats.tasks_completed, 5u);
  EXPECT_EQ(replayed.stats.failed_tasks, 0u);  // not failed — lost
  const std::string json = mc::trace_to_json(replayed);
  EXPECT_NE(json.find("starmc-trace-v1"), std::string::npos);
  std::ifstream jsonl(prefix + ".jsonl");
  std::ifstream chrome(prefix + ".trace.json");
  EXPECT_TRUE(jsonl.good());
  EXPECT_TRUE(chrome.good());
}

// --- Satellite: byte-stable replay -------------------------------------------

TEST(McReplay, TwoFreshEnginesReplayIdenticalDecisionVectors) {
  const Program program = graph_program("diamond.graph", 2);
  const Explorer explorer(program, Options{});
  // A nonempty prefix: forces the second alternative at the first branch
  // point, then canonical — any two fresh engines must walk bit-identical
  // schedules from it.
  const std::vector<int> decisions = {1, 0};
  const mc::RunOutcome a = explorer.replay(decisions);
  const mc::RunOutcome b = explorer.replay(decisions);
  ASSERT_EQ(a.choices.size(), b.choices.size());
  for (std::size_t i = 0; i < a.choices.size(); ++i) {
    EXPECT_EQ(a.choices[i].chosen, b.choices[i].chosen) << "choice " << i;
    ASSERT_EQ(a.choices[i].point.alts.size(), b.choices[i].point.alts.size());
    for (std::size_t k = 0; k < a.choices[i].point.alts.size(); ++k) {
      EXPECT_EQ(a.choices[i].point.alts[k].task,
                b.choices[i].point.alts[k].task);
      EXPECT_EQ(a.choices[i].point.alts[k].device,
                b.choices[i].point.alts[k].device);
    }
  }
  EXPECT_EQ(a.state_hash, b.state_hash);
  EXPECT_EQ(a.output_hash, b.output_hash);
}

TEST(McReplay, NullOracleMatchesCanonicalOracle) {
  // The oracle hook must be behavior-preserving: an engine with no oracle
  // and one with the always-0 CanonicalOracle produce identical schedules.
  const Program program = graph_program("diamond.graph", 2);
  auto run_with = [&](starvm::DecisionOracle* oracle) {
    starvm::EngineConfig config = program.make_config();
    config.oracle = oracle;
    starvm::Engine engine(config);
    program.body(engine);
    EXPECT_TRUE(engine.wait_all().ok());
    return mc::state_hash(engine.stats(), program.output_hash());
  };
  const std::uint64_t without = run_with(nullptr);
  starvm::CanonicalOracle canonical;
  const std::uint64_t with = run_with(&canonical);
  EXPECT_EQ(without, with);
}

// --- Satellite: attempt chains through wait_all ------------------------------

TEST(McAttempts, WaitAllStatusPreservesAttemptChain) {
  // Task 2 fails more often than the retry budget allows: wait_all's
  // aggregated Status and EngineStats::attempts must preserve the full
  // chain — which device, which attempt, which cause.
  starvm::EngineConfig config = starvm::EngineConfig::cpus(2);
  config.mode = starvm::ExecutionMode::kDeterministic;
  config.fault_tolerance.blacklist_after = 0;  // isolate the retry path
  auto plan = starvm::FaultPlan::parse("fail:task=2,attempts=10");
  ASSERT_TRUE(plan.ok());
  config.fault_plan =
      std::make_shared<const starvm::FaultPlan>(std::move(plan).value());

  starvm::Engine engine(config);
  std::vector<double> data(4, 1.0);
  auto* handle = engine.register_vector(data.data(), data.size());
  starvm::Codelet codelet;
  codelet.name = "inc";
  codelet.impls.push_back({starvm::DeviceKind::kCpu,
                           [](const starvm::ExecContext& ctx) {
                             ctx.buffer(0)[0] += 1.0;
                           }});
  engine.submit({&codelet, {{handle, starvm::Access::kReadWrite}}});
  engine.submit({&codelet, {{handle, starvm::Access::kReadWrite}}});

  const pdl::util::Status status = engine.wait_all();
  ASSERT_FALSE(status.ok());
  // The one-line status carries the chain digest.
  EXPECT_NE(status.error().str().find("attempt 1 on"), std::string::npos)
      << status.error().str();

  const starvm::EngineStats stats = engine.stats();
  ASSERT_FALSE(stats.errors.empty());
  EXPECT_NE(stats.errors[0].find("attempt"), std::string::npos);

  // Full structured history: three failed attempts for task 2 (budget =
  // 2 retries + first try), each with device and cause.
  int failed_attempts = 0;
  int max_attempt = 0;
  for (const starvm::TaskAttempt& a : stats.attempts) {
    if (a.task != 2) continue;
    if (a.outcome == starvm::TaskAttempt::Outcome::kFailed) ++failed_attempts;
    max_attempt = std::max(max_attempt, a.attempt);
    EXPECT_GE(a.device, 0);
    EXPECT_FALSE(a.cause.empty());
  }
  EXPECT_EQ(failed_attempts, 3);
  EXPECT_EQ(max_attempt, 3);
}

// --- Satellite: interleaving-sensitive scenarios -----------------------------

TEST(McInterleaving, RetryRacesBlacklistReroute) {
  // kill:device=0 with blacklist_after=1: the first failure blacklists
  // device 0, its queue re-routes, and the failed task retries on the
  // survivor — the retry and the re-route are in flight together.
  const std::string plan = "kill:device=0";
  auto make = [&]() {
    mc::GraphProgramOptions options;
    options.devices = 2;
    options.fault_plan = plan;
    options.fault_tolerance.blacklist_after = 1;
    auto program = mc::make_graph_program(load("diamond.graph"), options);
    EXPECT_TRUE(program.ok());
    return std::move(program).value();
  };

  // Natively: every task must complete on the survivor.
  const Program program = make();
  {
    starvm::EngineConfig config = program.make_config();
    starvm::Engine engine(config);
    program.body(engine);
    EXPECT_TRUE(engine.wait_all().ok());
    const starvm::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.tasks_completed, 5u);
    EXPECT_EQ(stats.devices_blacklisted, 1u);
    EXPECT_GE(stats.retries, 1u);
    const bool has_failed_attempt = std::any_of(
        stats.attempts.begin(), stats.attempts.end(),
        [](const starvm::TaskAttempt& a) {
          return a.outcome == starvm::TaskAttempt::Outcome::kFailed;
        });
    EXPECT_TRUE(has_failed_attempt);
  }

  // Under the explorer: a device-scoped plan fires schedule-dependently,
  // so disable the serial-equivalence check but demand every interleaving
  // still terminates with exactly-once, bounded-retry accounting.
  ASSERT_TRUE(mc::fault_plan_is_schedule_sensitive(plan));
  Options options;
  options.check_serial = false;
  const Result result = Explorer(make(), options).explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

TEST(McInterleaving, SubmitBatchOverlappingWaitAll) {
  // Two submission waves with a wait_all between them: the second wave's
  // choice points concatenate onto the first's, and the explorer drives
  // both. All four tasks serialize on one ReadWrite handle, so every
  // interleaving must produce data[0] == 1 + 4.
  struct WaveState {
    std::vector<double> data;
    starvm::Codelet codelet;
  };
  auto state = std::make_shared<WaveState>();
  state->codelet.name = "inc";
  state->codelet.impls.push_back({starvm::DeviceKind::kCpu,
                                  [](const starvm::ExecContext& ctx) {
                                    ctx.buffer(0)[0] += 1.0;
                                  }});

  Program program;
  program.expected_tasks = 4;
  program.make_config = []() {
    starvm::EngineConfig config = starvm::EngineConfig::cpus(2);
    config.mode = starvm::ExecutionMode::kDeterministic;
    return config;
  };
  program.body = [state](starvm::Engine& engine) {
    state->data.assign(4, 1.0);
    auto* handle = engine.register_vector(state->data.data(), 4);
    engine.submit({&state->codelet, {{handle, starvm::Access::kReadWrite}}});
    engine.submit({&state->codelet, {{handle, starvm::Access::kReadWrite}}});
    EXPECT_TRUE(engine.wait_all().ok());
    std::vector<starvm::TaskDesc> batch;
    batch.push_back(
        {&state->codelet, {{handle, starvm::Access::kReadWrite}}});
    batch.push_back(
        {&state->codelet, {{handle, starvm::Access::kReadWrite}}});
    engine.submit_batch(std::move(batch));
  };
  program.output_hash = [state]() {
    return static_cast<std::uint64_t>(state->data[0]);
  };

  // Natively first.
  {
    starvm::EngineConfig config = program.make_config();
    starvm::Engine engine(config);
    program.body(engine);
    EXPECT_TRUE(engine.wait_all().ok());
    EXPECT_DOUBLE_EQ(state->data[0], 5.0);
  }

  const Result result = Explorer(program, Options{}).explore();
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(result.findings.empty()) << findings_str(result);
}

// --- Invariant checkers on synthetic terminal states -------------------------

TEST(McInvariants, SyntheticViolationsAreClassified) {
  mc::RunOutcome run;
  run.stats.tasks_submitted = 3;
  starvm::TaskTrace t1;
  t1.id = 1;
  t1.device = 0;
  t1.start_vtime = 0.0;
  t1.finish_vtime = 1.0;
  starvm::TaskTrace t1_again = t1;  // double execution
  t1_again.start_vtime = 2.0;
  t1_again.finish_vtime = 1.5;  // and finishes before... no: runs backwards
  starvm::TaskTrace t2;
  t2.id = 2;
  t2.device = 0;
  t2.start_vtime = 0.5;  // overlaps t1 on device 0: clock ran backwards
  t2.finish_vtime = 0.6;
  run.stats.trace = {t1, t1_again, t2};
  starvm::TaskAttempt over;
  over.task = 2;
  over.attempt = 7;
  run.stats.attempts = {over};

  mc::InvariantContext ctx;
  ctx.expected_tasks = 3;  // task 3 unaccounted -> A601
  ctx.attempt_ceiling = 3;
  ctx.check_serial = true;
  ctx.has_canonical = true;
  ctx.canonical_hash = 42;
  run.output_hash = 41;  // diverges -> A602

  const std::vector<mc::Violation> violations = check_invariants(run, ctx);
  auto has = [&](const char* rule) {
    return std::any_of(violations.begin(), violations.end(),
                       [&](const mc::Violation& v) { return v.rule == rule; });
  };
  EXPECT_TRUE(has("A601-deadlock"));
  EXPECT_TRUE(has("A602-divergent-replay"));
  EXPECT_TRUE(has("A603-lost-task"));
  EXPECT_TRUE(has("A604-unbounded-retry-cycle"));
}

TEST(McInvariants, CleanRunHasNoViolations) {
  mc::RunOutcome run;
  run.stats.tasks_submitted = 2;
  starvm::TaskTrace t1;
  t1.id = 1;
  t1.device = 0;
  t1.finish_vtime = 1.0;
  starvm::TaskTrace t2;
  t2.id = 2;
  t2.device = 0;
  t2.start_vtime = 1.0;
  t2.finish_vtime = 2.0;
  run.stats.trace = {t1, t2};
  run.output_hash = 42;

  mc::InvariantContext ctx;
  ctx.expected_tasks = 2;
  ctx.attempt_ceiling = 3;
  ctx.check_serial = true;
  ctx.has_canonical = true;
  ctx.canonical_hash = 42;
  EXPECT_TRUE(check_invariants(run, ctx).empty());
}

}  // namespace
