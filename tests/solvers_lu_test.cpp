#include <gtest/gtest.h>

#include "kernels/lu.hpp"
#include "kernels/matrix.hpp"
#include "solvers/tiled_lu.hpp"
#include "starvm/engine.hpp"

namespace solvers {
namespace {

/// Diagonally dominant matrix: random noise + 2n on the diagonal (no
/// pivoting needed).
kernels::Matrix dominant_matrix(std::size_t n, unsigned seed) {
  kernels::Matrix a(n, n);
  a.fill_random(seed);
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, i) += 2.0 * static_cast<double>(n);
  }
  return a;
}

TEST(LuKernels, GetrfFactorsSmallMatrix) {
  const std::size_t n = 12;
  kernels::Matrix a = dominant_matrix(n, 1);
  kernels::Matrix original = a;
  ASSERT_TRUE(kernels::getrf_nopiv(n, a.data(), n));
  EXPECT_LT(kernels::lu_residual(n, a.data(), n, original.data(), n), 1e-9);
}

TEST(LuKernels, GetrfRejectsZeroPivot) {
  kernels::Matrix a(2, 2);  // all zeros
  EXPECT_FALSE(kernels::getrf_nopiv(2, a.data(), 2));
}

TEST(LuKernels, TrsmLeftUnitLowerSolves) {
  // L unit-lower known, X known, B = L X; trsm_lln_unit recovers X.
  const std::size_t n = 6, m = 4;
  kernels::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) l.at(i, k) = 0.5 + 0.1 * (i + k);
    l.at(i, i) = 1.0;
  }
  kernels::Matrix x(n, m);
  x.fill_random(3);
  kernels::Matrix b(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k <= i; ++k) sum += l.at(i, k) * x.at(k, j);
      b.at(i, j) = sum;
    }
  }
  kernels::trsm_lln_unit(n, m, l.data(), n, b.data(), m);
  EXPECT_LT(kernels::max_abs_diff(b.data(), x.data(), n * m), 1e-9);
}

TEST(LuKernels, TrsmRightUpperSolves) {
  // U upper known, X known, B = X U; trsm_run recovers X.
  const std::size_t m = 5, n = 6;
  kernels::Matrix u(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) u.at(i, j) = (i == j) ? 3.0 + i : 0.4;
  }
  kernels::Matrix x(m, n);
  x.fill_random(4);
  kernels::Matrix b(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k <= j; ++k) sum += x.at(i, k) * u.at(k, j);
      b.at(i, j) = sum;
    }
  }
  kernels::trsm_run(m, n, u.data(), n, b.data(), n);
  EXPECT_LT(kernels::max_abs_diff(b.data(), x.data(), m * n), 1e-9);
}

TEST(LuKernels, TrsmRightUpperSimdMatchesScalarAcrossFringeShapes) {
  // m sweeps across the 4-row quartet boundary (fringe of 0..3 rows).
  for (std::size_t m = 1; m <= 11; ++m) {
    for (std::size_t n : {1u, 4u, 7u}) {
      kernels::Matrix u(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          u.at(i, j) = (i == j) ? 2.0 + static_cast<double>(i) : 0.3;
        }
      }
      kernels::Matrix b_ref(m, n), b_simd(m, n);
      b_ref.fill_random(static_cast<unsigned>(m * 8 + n));
      b_simd = b_ref;
      kernels::trsm_run(m, n, u.data(), n, b_ref.data(), n);
      kernels::trsm_run_simd(m, n, u.data(), n, b_simd.data(), n);
      for (std::size_t i = 0; i < m * n; ++i) {
        // Reciprocal-multiply vs division: last-ulp differences allowed.
        ASSERT_NEAR(b_ref.data()[i], b_simd.data()[i],
                    1e-12 * std::max(1.0, std::abs(b_ref.data()[i])))
            << "m=" << m << " n=" << n;
      }
    }
  }
}

TEST(LuKernels, GemmNnSubtracts) {
  const std::size_t m = 3, n = 4, k = 2;
  kernels::Matrix a(m, k), b(k, n), c(m, n);
  a.fill_random(5);
  b.fill_random(6);
  c.fill(7.0);
  kernels::Matrix expected = c;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += a.at(i, p) * b.at(p, j);
      expected.at(i, j) -= sum;
    }
  }
  kernels::gemm_nn_minus(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  EXPECT_LT(kernels::max_abs_diff(c.data(), expected.data(), m * n), 1e-12);
}

class TiledLuTest
    : public testing::TestWithParam<std::tuple<int, int, starvm::SchedulerKind>> {};

TEST_P(TiledLuTest, FactorizationIsCorrect) {
  const auto [n_int, tiles, scheduler] = GetParam();
  const std::size_t n = static_cast<std::size_t>(n_int);
  kernels::Matrix a = dominant_matrix(n, 17);
  kernels::Matrix original = a;

  starvm::EngineConfig config = starvm::EngineConfig::cpus(4);
  config.scheduler = scheduler;
  starvm::Engine engine(std::move(config));
  auto result = tiled_lu(engine, a.data(), n, tiles);
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_LT(kernels::lu_residual(n, a.data(), n, original.data(), n), 1e-8);

  // Task count: T getrf + T(T-1) trsm + Σ (T-1-k)² gemm.
  const int t = tiles;
  const int gemms = (t - 1) * t * (2 * t - 1) / 6;
  EXPECT_EQ(result.value().tasks_submitted, t + t * (t - 1) + gemms);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledLuTest,
    testing::Values(std::make_tuple(16, 1, starvm::SchedulerKind::kEager),
                    std::make_tuple(32, 4, starvm::SchedulerKind::kEager),
                    std::make_tuple(48, 4, starvm::SchedulerKind::kWorkStealing),
                    std::make_tuple(64, 8, starvm::SchedulerKind::kHeft)));

TEST(TiledLu, HeterogeneousDevicesProduceSameFactors) {
  const std::size_t n = 48;
  kernels::Matrix a = dominant_matrix(n, 23);
  kernels::Matrix original = a;
  starvm::EngineConfig config;
  starvm::DeviceSpec cpu;
  cpu.name = "cpu";
  config.devices.push_back(cpu);
  starvm::DeviceSpec accel;
  accel.name = "gpu";
  accel.kind = starvm::DeviceKind::kAccelerator;
  config.devices.push_back(accel);
  starvm::Engine engine(std::move(config));
  auto result = tiled_lu(engine, a.data(), n, 6);
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_LT(kernels::lu_residual(n, a.data(), n, original.data(), n), 1e-8);
}

TEST(TiledLu, RejectsBadTilingAndZeroPivots) {
  starvm::Engine engine(starvm::EngineConfig::cpus(1));
  std::vector<double> a(16, 0.0);  // zero matrix: zero pivot
  EXPECT_FALSE(tiled_lu(engine, a.data(), 4, 3).ok());  // 4 % 3 != 0
  EXPECT_FALSE(tiled_lu(engine, a.data(), 4, 2).ok());  // zero pivot
}

}  // namespace
}  // namespace solvers
