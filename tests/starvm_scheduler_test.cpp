#include <gtest/gtest.h>

#include <atomic>

#include "starvm/engine.hpp"

namespace starvm {
namespace {

/// Run `tasks` independent equal-cost tasks on the given config; return stats.
EngineStats run_batch(EngineConfig config, int tasks, double flops_each) {
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));
  std::vector<std::vector<double>> buffers(static_cast<std::size_t>(tasks),
                                           std::vector<double>(4, 0.0));
  Codelet c;
  c.name = "unit";
  c.impls.push_back(Implementation{DeviceKind::kCpu, nullptr});
  c.impls.push_back(Implementation{DeviceKind::kAccelerator, nullptr});
  c.flops = [flops_each](const std::vector<BufferView>&) { return flops_each; };
  for (int i = 0; i < tasks; ++i) {
    DataHandle* h = engine.register_vector(buffers[static_cast<std::size_t>(i)].data(), 4);
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  return engine.stats();
}

class AllSchedulersTest : public testing::TestWithParam<SchedulerKind> {};

TEST_P(AllSchedulersTest, DrainsAllTasks) {
  EngineConfig config = EngineConfig::cpus(4, 10.0);
  config.scheduler = GetParam();
  config.mode = ExecutionMode::kPureSim;
  const EngineStats stats = run_batch(std::move(config), 100, 1e6);
  EXPECT_EQ(stats.tasks_completed, 100u);
}

TEST_P(AllSchedulersTest, UsesMultipleDevices) {
  // Real (hybrid) execution: in pure simulation tasks cost zero wall time,
  // so a single greedy worker can drain the queue before peers wake.
  EngineConfig config = EngineConfig::cpus(4, 10.0);
  config.scheduler = GetParam();
  Engine engine(std::move(config));
  Codelet c;
  c.name = "sleepy";
  c.impls.push_back(Implementation{DeviceKind::kCpu, [](const ExecContext&) {
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(3));
                                   }});
  std::vector<std::vector<double>> buffers(32, std::vector<double>(1));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), 1);
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  int devices_used = 0;
  for (const auto& d : engine.stats().devices) {
    if (d.tasks_run > 0) ++devices_used;
  }
  EXPECT_GE(devices_used, 2) << to_string(GetParam());
}

TEST_P(AllSchedulersTest, DependenciesRespectedUnderEveryPolicy) {
  EngineConfig config = EngineConfig::cpus(4);
  config.scheduler = GetParam();
  Engine engine(std::move(config));
  std::vector<double> data(1, 0.0);
  DataHandle* h = engine.register_vector(data.data(), 1);
  Codelet inc = [] {
    Codelet c;
    c.name = "inc";
    c.impls.push_back(Implementation{DeviceKind::kCpu, [](const ExecContext& ctx) {
                                       ctx.buffer(0)[0] += 1.0;
                                     }});
    return c;
  }();
  for (int i = 0; i < 50; ++i) {
    engine.submit(TaskDesc{&inc, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(data[0], 50.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllSchedulersTest,
                         testing::Values(SchedulerKind::kEager,
                                         SchedulerKind::kWorkStealing,
                                         SchedulerKind::kHeft),
                         [](const testing::TestParamInfo<SchedulerKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(HeftScheduler, PrefersFasterDeviceForMostWork) {
  // One 10x faster device: HEFT should give it the bulk of the batch.
  EngineConfig config;
  DeviceSpec slow;
  slow.name = "slow";
  slow.sustained_gflops = 1.0;
  DeviceSpec fast;
  fast.name = "fast";
  fast.sustained_gflops = 10.0;
  config.devices = {slow, fast};
  config.scheduler = SchedulerKind::kHeft;
  config.mode = ExecutionMode::kPureSim;

  const EngineStats stats = run_batch(std::move(config), 110, 1e8);
  ASSERT_EQ(stats.devices.size(), 2u);
  const auto& slow_stats = stats.devices[0];
  const auto& fast_stats = stats.devices[1];
  EXPECT_EQ(slow_stats.tasks_run + fast_stats.tasks_run, 110u);
  // Ideal split is 10:100; allow slack but demand a clear skew.
  EXPECT_GT(fast_stats.tasks_run, 4 * slow_stats.tasks_run);
}

TEST(HeftScheduler, AccountsForTransferCosts) {
  // Data resident on the host: a slightly faster accelerator with an
  // expensive link should lose small tasks to the CPU.
  EngineConfig config;
  DeviceSpec cpu;
  cpu.name = "cpu";
  cpu.kind = DeviceKind::kCpu;
  cpu.sustained_gflops = 10.0;
  DeviceSpec accel;
  accel.name = "accel";
  accel.kind = DeviceKind::kAccelerator;
  accel.sustained_gflops = 12.0;
  accel.link_bandwidth_gbs = 0.001;  // dreadful link
  accel.link_latency_us = 10000.0;
  config.devices = {cpu, accel};
  config.scheduler = SchedulerKind::kHeft;
  config.mode = ExecutionMode::kPureSim;
  config.task_overhead_us = 0.0;

  Engine engine(std::move(config));
  Codelet c;
  c.name = "tiny";
  c.impls.push_back(Implementation{DeviceKind::kCpu, nullptr});
  c.impls.push_back(Implementation{DeviceKind::kAccelerator, nullptr});
  c.flops = [](const std::vector<BufferView>&) { return 1e6; };

  std::vector<std::vector<double>> buffers(20, std::vector<double>(1024, 0.0));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), buf.size());
    engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.devices[0].tasks_run, 20u);  // everything stayed on the CPU
  EXPECT_EQ(stats.devices[1].tasks_run, 0u);
}

TEST(WorkStealing, BalancesSkewedInitialPlacement) {
  EngineConfig config = EngineConfig::cpus(4, 10.0);
  config.scheduler = SchedulerKind::kWorkStealing;
  Engine engine(std::move(config));

  std::atomic<int> executed{0};
  Codelet c;
  c.name = "spin";
  c.impls.push_back(Implementation{DeviceKind::kCpu, [&](const ExecContext&) {
                                     ++executed;
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(2));
                                   }});
  std::vector<std::vector<double>> buffers(40, std::vector<double>(1));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), 1);
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(executed.load(), 40);
  const EngineStats stats = engine.stats();
  int devices_used = 0;
  for (const auto& d : stats.devices) {
    if (d.tasks_run > 0) ++devices_used;
  }
  EXPECT_GE(devices_used, 3);
}

TEST(SchedulerKindStrings, Roundtrip) {
  EXPECT_EQ(to_string(SchedulerKind::kEager), "eager");
  EXPECT_EQ(to_string(SchedulerKind::kWorkStealing), "ws");
  EXPECT_EQ(to_string(SchedulerKind::kHeft), "heft");
  EXPECT_EQ(to_string(DeviceKind::kCpu), "cpu");
  EXPECT_EQ(to_string(DeviceKind::kAccelerator), "accelerator");
  EXPECT_EQ(to_string(Access::kRead), "read");
  EXPECT_EQ(to_string(Access::kWrite), "write");
  EXPECT_EQ(to_string(Access::kReadWrite), "readwrite");
}

}  // namespace
}  // namespace starvm
