// Property-based stress tests: random task DAGs over shared data handles
// must obey sequential consistency under every scheduler and device mix.
//
// Each task reads a set of handles and read-writes one target handle,
// folding the values it read into the target with an order-sensitive hash.
// A serial replay in submission order defines the expected outcome; any
// dependency-tracking or scheduling bug (lost edge, reordered writers,
// racing readers) diverges.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "starvm/engine.hpp"

namespace starvm {
namespace {

struct StressCase {
  SchedulerKind scheduler;
  int devices;
  int accelerators;
  int handles;
  int tasks;
  unsigned seed;
};

/// Order-sensitive fold: not commutative, so write reordering is caught.
double fold(double current, double incoming) {
  return current * 1.000001 + incoming * 0.37 + 1.0;
}

class StressTest : public testing::TestWithParam<StressCase> {};

TEST_P(StressTest, MatchesSerialReplay) {
  const StressCase param = GetParam();
  std::mt19937 rng(param.seed);

  // Plan the task list once; run it serially and through the engine.
  struct PlannedTask {
    std::vector<int> reads;
    int target;
  };
  std::vector<PlannedTask> plan;
  std::uniform_int_distribution<int> pick_handle(0, param.handles - 1);
  std::uniform_int_distribution<int> pick_reads(0, 3);
  for (int t = 0; t < param.tasks; ++t) {
    PlannedTask task;
    task.target = pick_handle(rng);
    const int reads = pick_reads(rng);
    for (int r = 0; r < reads; ++r) {
      const int h = pick_handle(rng);
      if (h != task.target) task.reads.push_back(h);
    }
    plan.push_back(std::move(task));
  }

  // Serial replay.
  std::vector<double> expected(static_cast<std::size_t>(param.handles));
  for (int h = 0; h < param.handles; ++h) {
    expected[static_cast<std::size_t>(h)] = h + 1.0;
  }
  for (const auto& task : plan) {
    double sum = 0.0;
    for (int r : task.reads) sum += expected[static_cast<std::size_t>(r)];
    auto& target = expected[static_cast<std::size_t>(task.target)];
    target = fold(target, sum);
  }

  // Engine execution.
  EngineConfig config;
  for (int d = 0; d < param.devices; ++d) {
    DeviceSpec spec;
    spec.name = "dev" + std::to_string(d);
    spec.kind = d < param.accelerators ? DeviceKind::kAccelerator
                                       : DeviceKind::kCpu;
    spec.sustained_gflops = 5.0 + d;
    config.devices.push_back(std::move(spec));
  }
  config.scheduler = param.scheduler;
  Engine engine(std::move(config));

  std::vector<double> actual(static_cast<std::size_t>(param.handles));
  std::vector<DataHandle*> handles(static_cast<std::size_t>(param.handles));
  for (int h = 0; h < param.handles; ++h) {
    actual[static_cast<std::size_t>(h)] = h + 1.0;
    handles[static_cast<std::size_t>(h)] =
        engine.register_vector(&actual[static_cast<std::size_t>(h)], 1);
  }

  // One codelet; the kernel derives reads/target from the buffer list:
  // buffer 0 is the RW target, the rest are reads.
  Codelet codelet;
  codelet.name = "fold";
  const auto kernel = [](const ExecContext& ctx) {
    double sum = 0.0;
    for (std::size_t i = 1; i < ctx.buffer_count(); ++i) sum += ctx.buffer(i)[0];
    ctx.buffer(0)[0] = fold(ctx.buffer(0)[0], sum);
  };
  codelet.impls.push_back({DeviceKind::kCpu, kernel});
  codelet.impls.push_back({DeviceKind::kAccelerator, kernel});

  for (const auto& task : plan) {
    TaskDesc desc;
    desc.codelet = &codelet;
    desc.buffers.push_back(
        {handles[static_cast<std::size_t>(task.target)], Access::kReadWrite});
    for (int r : task.reads) {
      desc.buffers.push_back(
          {handles[static_cast<std::size_t>(r)], Access::kRead});
    }
    engine.submit(std::move(desc));
  }
  EXPECT_TRUE(engine.wait_all().ok());

  for (int h = 0; h < param.handles; ++h) {
    EXPECT_DOUBLE_EQ(actual[static_cast<std::size_t>(h)],
                     expected[static_cast<std::size_t>(h)])
        << "handle " << h;
  }
  EXPECT_EQ(engine.stats().tasks_completed,
            static_cast<std::uint64_t>(param.tasks));
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, StressTest,
    testing::Values(
        StressCase{SchedulerKind::kEager, 4, 0, 8, 300, 1},
        StressCase{SchedulerKind::kEager, 4, 2, 8, 300, 2},
        StressCase{SchedulerKind::kWorkStealing, 4, 0, 8, 300, 3},
        StressCase{SchedulerKind::kWorkStealing, 6, 2, 5, 400, 4},
        StressCase{SchedulerKind::kHeft, 4, 0, 8, 300, 5},
        StressCase{SchedulerKind::kHeft, 8, 3, 6, 500, 6},
        StressCase{SchedulerKind::kEager, 2, 1, 2, 200, 7},
        StressCase{SchedulerKind::kHeft, 3, 1, 1, 150, 8}),
    [](const testing::TestParamInfo<StressCase>& param_info) {
      const StressCase& c = param_info.param;
      return std::string(to_string(c.scheduler)) + "_d" +
             std::to_string(c.devices) + "a" + std::to_string(c.accelerators) +
             "_h" + std::to_string(c.handles) + "_t" + std::to_string(c.tasks);
    });

/// Concurrent submission: several application threads submit dependency
/// chains at once while the workers drain. Each producer owns a disjoint
/// handle set, so its per-handle serial order is its program order and a
/// serial replay per producer defines the expected values — while the
/// chains themselves hop across device shards (HEFT places successive
/// tasks of a chain on whichever device is least loaded). Exercises the
/// submit-mutex / edge-mutex / ready-queue split under real contention;
/// runs under TSan in CI (the *Stress* filter).
TEST(StressMultiProducer, ConcurrentSubmitMatchesSerialReplay) {
  constexpr int kProducers = 4;
  constexpr int kHandlesPerProducer = 4;
  constexpr int kTasksPerProducer = 400;

  Engine engine(EngineConfig::cpus(4));

  Codelet codelet;
  codelet.name = "fold";
  const auto kernel = [](const ExecContext& ctx) {
    double sum = 0.0;
    for (std::size_t i = 1; i < ctx.buffer_count(); ++i) sum += ctx.buffer(i)[0];
    ctx.buffer(0)[0] = fold(ctx.buffer(0)[0], sum);
  };
  codelet.impls.push_back({DeviceKind::kCpu, kernel});

  // Values owned per producer; registered and submitted from the producer's
  // own thread so registration races with wiring and draining.
  std::vector<std::vector<double>> actual(
      kProducers, std::vector<double>(kHandlesPerProducer));
  std::vector<std::vector<double>> expected = actual;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 rng(static_cast<unsigned>(100 + p));
      std::uniform_int_distribution<int> pick(0, kHandlesPerProducer - 1);
      auto& values = actual[static_cast<std::size_t>(p)];
      auto& replay = expected[static_cast<std::size_t>(p)];
      for (int h = 0; h < kHandlesPerProducer; ++h) {
        values[static_cast<std::size_t>(h)] = p * 100.0 + h + 1.0;
        replay[static_cast<std::size_t>(h)] = values[static_cast<std::size_t>(h)];
      }
      std::vector<DataHandle*> handles(kHandlesPerProducer);
      for (int h = 0; h < kHandlesPerProducer; ++h) {
        handles[static_cast<std::size_t>(h)] =
            engine.register_vector(&values[static_cast<std::size_t>(h)], 1);
      }
      for (int t = 0; t < kTasksPerProducer; ++t) {
        const int target = pick(rng);
        const int read = pick(rng);
        TaskDesc desc;
        desc.codelet = &codelet;
        desc.buffers.push_back(
            {handles[static_cast<std::size_t>(target)], Access::kReadWrite});
        if (read != target) {
          desc.buffers.push_back(
              {handles[static_cast<std::size_t>(read)], Access::kRead});
        }
        engine.submit(std::move(desc));
        // Replay immediately: this producer is the only writer of its set,
        // so its submission order is the per-handle serial order.
        double sum = 0.0;
        if (read != target) sum = replay[static_cast<std::size_t>(read)];
        auto& tgt = replay[static_cast<std::size_t>(target)];
        tgt = fold(tgt, sum);
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(engine.wait_all().ok());

  for (int p = 0; p < kProducers; ++p) {
    for (int h = 0; h < kHandlesPerProducer; ++h) {
      EXPECT_DOUBLE_EQ(actual[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)],
                       expected[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)])
          << "producer " << p << " handle " << h;
    }
  }
  EXPECT_EQ(engine.stats().tasks_completed,
            static_cast<std::uint64_t>(kProducers * kTasksPerProducer));
}

/// Replay is wrong when the producer's replay races the engine's kernels
/// on the same doubles — it must not: the replay writes `expected`, the
/// kernels write `actual`, disjoint storage. What CAN race is submission
/// against execution, which is the point. This variant pins that property
/// under the work-stealing policy, where idle shards steal the backlog.
TEST(StressMultiProducer, WorkStealingConcurrentSubmit) {
  constexpr int kProducers = 2;
  constexpr int kTasks = 500;

  EngineConfig config = EngineConfig::cpus(4);
  config.scheduler = SchedulerKind::kWorkStealing;
  Engine engine(std::move(config));

  Codelet codelet;
  codelet.name = "chain";
  codelet.impls.push_back({DeviceKind::kCpu, [](const ExecContext& ctx) {
                             ctx.buffer(0)[0] = fold(ctx.buffer(0)[0], 0.0);
                           }});

  std::vector<double> values(kProducers, 1.0);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      DataHandle* h = engine.register_vector(&values[static_cast<std::size_t>(p)], 1);
      for (int t = 0; t < kTasks; ++t) {
        engine.submit(TaskDesc{&codelet, {{h, Access::kReadWrite}}});
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(engine.wait_all().ok());

  double expected = 1.0;
  for (int t = 0; t < kTasks; ++t) expected = fold(expected, 0.0);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(p)], expected) << p;
  }
}

/// kDeterministic must be bit-reproducible: the same program run twice
/// produces byte-identical output buffers (the mode exists so failures
/// can be replayed exactly; see docs/RUNTIME.md).
TEST(StressDeterminism, DeterministicModeIsByteIdentical) {
  const auto run = [](std::vector<double>& data) {
    constexpr int kHandles = 6;
    constexpr int kTasks = 300;
    EngineConfig config = EngineConfig::cpus(4);
    config.mode = ExecutionMode::kDeterministic;
    Engine engine(std::move(config));

    Codelet codelet;
    codelet.name = "fold";
    const auto kernel = [](const ExecContext& ctx) {
      double sum = 0.0;
      for (std::size_t i = 1; i < ctx.buffer_count(); ++i) {
        sum += ctx.buffer(i)[0];
      }
      ctx.buffer(0)[0] = fold(ctx.buffer(0)[0], sum);
    };
    codelet.impls.push_back({DeviceKind::kCpu, kernel});

    data.assign(kHandles, 0.0);
    for (int h = 0; h < kHandles; ++h) data[static_cast<std::size_t>(h)] = h + 0.5;
    std::vector<DataHandle*> handles(kHandles);
    for (int h = 0; h < kHandles; ++h) {
      handles[static_cast<std::size_t>(h)] =
          engine.register_vector(&data[static_cast<std::size_t>(h)], 1);
    }
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> pick(0, kHandles - 1);
    for (int t = 0; t < kTasks; ++t) {
      const int target = pick(rng);
      const int read = pick(rng);
      TaskDesc desc;
      desc.codelet = &codelet;
      desc.buffers.push_back(
          {handles[static_cast<std::size_t>(target)], Access::kReadWrite});
      if (read != target) {
        desc.buffers.push_back(
            {handles[static_cast<std::size_t>(read)], Access::kRead});
      }
      engine.submit(std::move(desc));
    }
    ASSERT_TRUE(engine.wait_all().ok());
  };

  std::vector<double> first, second;
  run(first);
  run(second);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(double)));
}

/// The same property must hold in pure simulation for the virtual clock:
/// per-device busy time must sum to the trace's execution costs and the
/// makespan must cover the last finish.
TEST(StressSim, VirtualClockInvariants) {
  EngineConfig config = EngineConfig::cpus(3, 10.0);
  config.mode = ExecutionMode::kPureSim;
  config.scheduler = SchedulerKind::kHeft;
  Engine engine(std::move(config));

  std::mt19937 rng(99);
  Codelet codelet;
  codelet.name = "sim";
  codelet.impls.push_back({DeviceKind::kCpu, nullptr});
  codelet.flops = [](const std::vector<BufferView>& buffers) {
    return static_cast<double>(buffers[0].handle->cols()) * 1e6;
  };
  std::vector<std::vector<double>> buffers;
  std::uniform_int_distribution<std::size_t> size(1, 64);
  for (int t = 0; t < 200; ++t) {
    buffers.emplace_back(size(rng), 0.0);
  }
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), buf.size());
    engine.submit(TaskDesc{&codelet, {{h, Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());

  const EngineStats stats = engine.stats();
  double last_finish = 0.0;
  std::vector<double> busy(stats.devices.size(), 0.0);
  for (const auto& t : stats.trace) {
    EXPECT_LE(t.start_vtime, t.finish_vtime);
    last_finish = std::max(last_finish, t.finish_vtime);
    busy[static_cast<std::size_t>(t.device)] += t.exec_seconds;
  }
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, last_finish);
  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    EXPECT_NEAR(stats.devices[d].busy_seconds, busy[d], 1e-12);
  }

  // No device may run two tasks at once on the virtual clock.
  for (std::size_t i = 0; i < stats.trace.size(); ++i) {
    for (std::size_t j = i + 1; j < stats.trace.size(); ++j) {
      if (stats.trace[i].device != stats.trace[j].device) continue;
      const auto& a = stats.trace[i];
      const auto& b = stats.trace[j];
      const bool disjoint =
          a.finish_vtime <= b.start_vtime + 1e-12 ||
          b.finish_vtime <= a.start_vtime + 1e-12;
      EXPECT_TRUE(disjoint) << "overlap on device " << a.device;
    }
  }
}

}  // namespace
}  // namespace starvm
