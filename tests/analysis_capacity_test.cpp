// Tests for the schedule-aware capacity & interference analysis (A5xx):
// the HEFT schedule simulator (schedule_sim), the capacity rules
// (capacity), the SARIF 2.1.0 renderer (sarif), the task-graph fixture
// format (graph_io), and the rule-id suggestion helper — including the
// committed undersized-platform / oversubscribed-DAG fixture pair.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "analysis/capacity.hpp"
#include "analysis/graph_io.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "analysis/sarif.hpp"
#include "analysis/schedule_sim.hpp"
#include "json_checker.hpp"
#include "pdl/parser.hpp"

namespace analysis {
namespace {

const pdl::Diagnostic* find_finding(const pdl::Diagnostics& diags,
                                    std::string_view rule,
                                    std::string_view message_part = "") {
  for (const auto& d : diags) {
    if (d.rule == rule &&
        (message_part.empty() ||
         d.message.find(message_part) != std::string::npos)) {
      return &d;
    }
  }
  return nullptr;
}

std::size_t count_rule(const pdl::Diagnostics& diags, std::string_view rule) {
  std::size_t n = 0;
  for (const auto& d : diags) n += d.rule == rule ? 1 : 0;
  return n;
}

pdl::Platform parse(std::string_view xml) {
  auto platform = pdl::parse_platform(xml);
  EXPECT_TRUE(platform.ok()) << (platform.ok() ? "" : platform.error().str());
  return std::move(platform).value();
}

/// One CPU worker (2 cores at 10 GFLOPS) — everything runs on the host.
constexpr const char* kCpuOnlyPlatform = R"(<?xml version="1.0"?>
<Platform name="cpu-only" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
      <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>10</value></Property>
    </PUDescriptor>
    <MemoryRegion id="mr_host">
      <MRDescriptor>
        <Property fixed="true"><name>SIZE</name><value unit="MB">64</value></Property>
      </MRDescriptor>
    </MemoryRegion>
    <Worker id="cores" quantity="2">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>x86_core</value></Property>
      </PUDescriptor>
    </Worker>
  </Master>
</Platform>)";

/// One fast accelerator (1 MB local memory) behind a slow declared link.
constexpr const char* kAccelPlatform = R"(<?xml version="1.0"?>
<Platform name="accel" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
      <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>8</value></Property>
    </PUDescriptor>
    <MemoryRegion id="mr_host">
      <MRDescriptor>
        <Property fixed="true"><name>SIZE</name><value unit="MB">64</value></Property>
      </MRDescriptor>
    </MemoryRegion>
    <Worker id="acc" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property>
        <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>500</value></Property>
      </PUDescriptor>
      <MemoryRegion id="mr_acc">
        <MRDescriptor>
          <Property fixed="true"><name>SIZE</name><value unit="MB">1</value></Property>
        </MRDescriptor>
      </MemoryRegion>
    </Worker>
    <Interconnect type="PCIe" from="m" to="acc" scheme="rDMA">
      <ICDescriptor>
        <Property fixed="true"><name>BANDWIDTH_GB_S</name><value>0.1</value></Property>
        <Property fixed="true"><name>LATENCY_US</name><value>5</value></Property>
      </ICDescriptor>
    </Interconnect>
  </Master>
</Platform>)";

/// Like kAccelPlatform but the Interconnect is missing (A502 territory).
constexpr const char* kAccelNoLinkPlatform = R"(<?xml version="1.0"?>
<Platform name="accel-nolink" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
    </PUDescriptor>
    <Worker id="acc" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property>
        <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>500</value></Property>
      </PUDescriptor>
    </Worker>
  </Master>
</Platform>)";

// --- Schedule simulation ------------------------------------------------------

TEST(ScheduleSim, EmptyGraphYieldsEmptyPlan) {
  const pdl::Platform platform = parse(kCpuOnlyPlatform);
  starvm::TaskGraph graph;
  const SchedulePlan plan = simulate_schedule(graph, platform);
  EXPECT_EQ(plan.devices.size(), 2u);
  EXPECT_EQ(plan.makespan_seconds, 0.0);
  EXPECT_TRUE(plan.placements.empty());
  EXPECT_TRUE(plan.critical_path.empty());
}

TEST(ScheduleSim, IndependentTasksSpreadAcrossDevices) {
  const pdl::Platform platform = parse(kCpuOnlyPlatform);
  starvm::TaskGraph graph;
  const int b0 = graph.add_buffer("b0", 1024);
  const int b1 = graph.add_buffer("b1", 1024);
  graph.add_task("t0", {{b0, starvm::Access::kReadWrite}});
  graph.add_task("t1", {{b1, starvm::Access::kReadWrite}});
  const SchedulePlan plan = simulate_schedule(graph, platform);
  ASSERT_EQ(plan.placements.size(), 2u);
  // Two independent tasks on two idle CPUs: one each, starting at zero.
  EXPECT_NE(plan.placements[0].device, plan.placements[1].device);
  EXPECT_EQ(plan.placements[0].start_seconds, 0.0);
  EXPECT_EQ(plan.placements[1].start_seconds, 0.0);
  // No transfers on the host: CPUs share the host space.
  EXPECT_EQ(plan.placements[0].transfer_bytes, 0u);
  EXPECT_EQ(plan.placements[1].transfer_bytes, 0u);
}

TEST(ScheduleSim, DependencyChainSerializesAndSetsCriticalPath) {
  const pdl::Platform platform = parse(kCpuOnlyPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("b", 1024);
  const int t0 = graph.add_task("t0", {{b, starvm::Access::kWrite}});
  graph.add_task("t1", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t0, 1e9);  // 1 GFLOP at the declared 10 GFLOPS
  const SchedulePlan plan = simulate_schedule(graph, platform);
  ASSERT_EQ(plan.placements.size(), 2u);
  EXPECT_GE(plan.placements[1].start_seconds, plan.placements[0].finish_seconds);
  ASSERT_EQ(plan.critical_path.size(), 2u);
  EXPECT_EQ(plan.critical_path[0], 0);
  EXPECT_EQ(plan.critical_path[1], 1);
  EXPECT_GT(plan.critical_path_seconds, 0.0);
  EXPECT_LE(plan.critical_path_seconds, plan.makespan_seconds + 1e-12);
}

TEST(ScheduleSim, TransfersChargedOntoAcceleratorLink) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("big", 2 * 1000 * 1000);
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e6);  // cheap compute, so the accelerator wins
  const SchedulePlan plan = simulate_schedule(graph, platform);
  ASSERT_EQ(plan.placements.size(), 1u);
  const TaskPlacement& p = plan.placements[0];
  ASSERT_GE(p.device, 0);
  EXPECT_FALSE(plan.devices[p.device].is_cpu);
  EXPECT_EQ(p.transfer_bytes, 2u * 1000 * 1000);
  // 2 MB at 0.1 GB/s + 5 us latency = 20.005 ms.
  EXPECT_NEAR(p.transfer_seconds, 0.020005, 1e-9);
  ASSERT_EQ(plan.interconnects.size(), 1u);
  EXPECT_EQ(plan.interconnects[0].transfers, 1);
  // Peak footprint lands in the accelerator's space.
  bool found = false;
  for (const SimMemorySpace& space : plan.spaces) {
    if (space.label.find("mr_acc") != std::string::npos) {
      EXPECT_EQ(space.peak_bytes, 2u * 1000 * 1000);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScheduleSim, ResidentBufferIsNotTransferredTwice) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("big", 2 * 1000 * 1000);
  const int t0 = graph.add_task("t0", {{b, starvm::Access::kReadWrite}});
  const int t1 = graph.add_task("t1", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t0, 1e6);
  graph.set_task_flops(t1, 1e6);
  const SchedulePlan plan = simulate_schedule(graph, platform);
  ASSERT_EQ(plan.placements.size(), 2u);
  // t1 runs where the data already is: no second transfer.
  EXPECT_EQ(plan.placements[1].device, plan.placements[0].device);
  EXPECT_EQ(plan.placements[1].transfer_bytes, 0u);
}

TEST(ScheduleSim, MasterFallbackWhenNoWorkers) {
  const pdl::Platform platform = parse(R"(<?xml version="1.0"?>
<Platform name="single" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
    </PUDescriptor>
  </Master>
</Platform>)");
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("b", 64);
  graph.add_task("t", {{b, starvm::Access::kRead}});
  const SchedulePlan plan = simulate_schedule(graph, platform);
  ASSERT_EQ(plan.devices.size(), 1u);
  EXPECT_EQ(plan.devices[0].name, "master:m");
  EXPECT_EQ(plan.placements[0].device, 0);
}

TEST(ScheduleSim, DeterministicAcrossRuns) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b0 = graph.add_buffer("b0", 500 * 1000);
  const int b1 = graph.add_buffer("b1", 500 * 1000);
  const int t0 = graph.add_task("t0", {{b0, starvm::Access::kReadWrite}});
  const int t1 =
      graph.add_task("t1", {{b1, starvm::Access::kReadWrite}}, {t0});
  graph.set_task_flops(t0, 1e8);
  graph.set_task_flops(t1, 1e8);
  const SchedulePlan a = simulate_schedule(graph, platform);
  const SchedulePlan b = simulate_schedule(graph, platform);
  EXPECT_EQ(render_plan_text(a, graph), render_plan_text(b, graph));
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
}

// --- A5xx rules ---------------------------------------------------------------

TEST(AnalyzeSchedule, A501_FiresWhenWorkingSetExceedsCapacity) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("big", 2 * 1000 * 1000);  // 2 MB into 1 MB
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e6);
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  const pdl::Diagnostic* d =
      find_finding(diags, kMemoryCapacityExceeded, "mr_acc");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  EXPECT_NE(d->message.find("2000000 B"), std::string::npos);
}

TEST(AnalyzeSchedule, A501_SilentWhenWorkingSetFits) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("small", 100 * 1000);  // 100 kB into 1 MB
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e12);  // compute-heavy: accelerator wins
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  EXPECT_EQ(count_rule(diags, kMemoryCapacityExceeded), 0u);
}

TEST(AnalyzeSchedule, A502_FiresOnTransfersWithoutDeclaredLink) {
  const pdl::Platform platform = parse(kAccelNoLinkPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("b", 1000 * 1000);
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e12);  // lands on the (fast) linkless accelerator
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kNoTransferPath, "acc");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
}

TEST(AnalyzeSchedule, A503_FiresWhenTransferDominatesCompute) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("big", 2 * 1000 * 1000);
  const int t = graph.add_task("stream", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e6);
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kTransferBoundTask, "stream");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("transfers dominate"), std::string::npos);
}

TEST(AnalyzeSchedule, A503_SilentForComputeBoundTask) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("small", 1000);
  const int t = graph.add_task("crunch", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e12);  // 2 s of compute vs ~15 us of transfer
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  EXPECT_EQ(count_rule(diags, kTransferBoundTask), 0u);
}

TEST(AnalyzeSchedule, A504_FiresWhenDeviceStarvedBySerialChain) {
  // A serial chain that lives entirely on the fast accelerator (once the
  // data is there) while a deliberately slow CPU worker never receives a
  // task: the CPU idles through a makespan inflated far over the
  // critical-path bound by the slow link.
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("b", 2 * 1000 * 1000);
  int prev = -1;
  for (int i = 0; i < 8; ++i) {
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = graph.add_task("t" + std::to_string(i),
                          {{b, starvm::Access::kReadWrite}}, deps);
    graph.set_task_flops(prev, 1e6);
  }
  const pdl::Platform both = parse(R"(<?xml version="1.0"?>
<Platform name="cpu-plus-accel" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
    </PUDescriptor>
    <Worker id="cpu" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>x86_core</value></Property>
        <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>0.001</value></Property>
      </PUDescriptor>
    </Worker>
    <Worker id="acc" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property>
        <Property fixed="true"><name>SUSTAINED_GFLOPS</name><value>500</value></Property>
      </PUDescriptor>
      <MemoryRegion id="mr_acc">
        <MRDescriptor>
          <Property fixed="true"><name>SIZE</name><value unit="MB">64</value></Property>
        </MRDescriptor>
      </MemoryRegion>
    </Worker>
    <Interconnect type="PCIe" from="m" to="acc" scheme="rDMA">
      <ICDescriptor>
        <Property fixed="true"><name>BANDWIDTH_GB_S</name><value>0.01</value></Property>
        <Property fixed="true"><name>LATENCY_US</name><value>5</value></Property>
      </ICDescriptor>
    </Interconnect>
  </Master>
</Platform>)");
  pdl::Diagnostics diags2;
  analyze_schedule(graph, both, {}, diags2);
  const pdl::Diagnostic* d = find_finding(diags2, kLoadImbalance, "cpu");
  ASSERT_NE(d, nullptr) << render_text(diags2);
  EXPECT_NE(d->message.find("idle"), std::string::npos);
}

TEST(AnalyzeSchedule, A504_SilentWhenScheduleIsBalanced) {
  const pdl::Platform platform = parse(kCpuOnlyPlatform);
  starvm::TaskGraph graph;
  for (int i = 0; i < 8; ++i) {
    const int b = graph.add_buffer("b" + std::to_string(i), 1024);
    graph.add_task("t" + std::to_string(i), {{b, starvm::Access::kReadWrite}});
  }
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  EXPECT_EQ(count_rule(diags, kLoadImbalance), 0u);
}

TEST(AnalyzeSchedule, A505_FiresOnSharedLinkContention) {
  pdl::Diagnostics parse_diags;
  auto platform = pdl::parse_platform_file(
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/undersized.pdl.xml",
      parse_diags);
  ASSERT_TRUE(platform.ok());
  auto graph = load_graph_file(std::string(PDL_SOURCE_DIR) +
                               "/tests/fixtures/oversubscribed.graph");
  ASSERT_TRUE(graph.ok()) << graph.error().str();
  pdl::Diagnostics diags;
  analyze_schedule(graph.value(), platform.value(), {}, diags);
  pdl::normalize(diags);
  // The committed fixture pair fires all three headline rules.
  EXPECT_EQ(count_rule(diags, kMemoryCapacityExceeded), 2u)
      << render_text(diags);
  EXPECT_EQ(count_rule(diags, kTransferBoundTask), 4u) << render_text(diags);
  EXPECT_EQ(count_rule(diags, kInterconnectOversubscribed), 1u)
      << render_text(diags);
  const pdl::Diagnostic* d = find_finding(diags, kInterconnectOversubscribed);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("overlapping transfers"), std::string::npos);
}

TEST(AnalyzeSchedule, A505_SilentWithoutOverlap) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("b", 1000 * 1000);
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e6);
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, {}, diags);
  EXPECT_EQ(count_rule(diags, kInterconnectOversubscribed), 0u);
}

TEST(AnalyzeSchedule, RespectsRuleOptionsLikeOtherFamilies) {
  const pdl::Platform platform = parse(kAccelPlatform);
  starvm::TaskGraph graph;
  const int b = graph.add_buffer("big", 2 * 1000 * 1000);
  const int t = graph.add_task("t", {{b, starvm::Access::kReadWrite}});
  graph.set_task_flops(t, 1e6);

  AnalysisOptions off;
  off.disabled.insert(kMemoryCapacityExceeded);
  off.disabled.insert(kTransferBoundTask);
  pdl::Diagnostics diags;
  analyze_schedule(graph, platform, off, diags);
  EXPECT_EQ(count_rule(diags, kMemoryCapacityExceeded), 0u);
  EXPECT_EQ(count_rule(diags, kTransferBoundTask), 0u);

  AnalysisOptions demote;
  demote.severity_overrides[kMemoryCapacityExceeded] = pdl::Severity::kInfo;
  pdl::Diagnostics diags2;
  analyze_schedule(graph, platform, demote, diags2);
  const pdl::Diagnostic* d = find_finding(diags2, kMemoryCapacityExceeded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kInfo);
}

// --- Rule catalog additions ---------------------------------------------------

TEST(RuleCatalogA5xx, CatalogAndSuggestions) {
  ASSERT_NE(find_rule("A501"), nullptr);
  ASSERT_NE(find_rule("A505-interconnect-oversubscribed"), nullptr);
  EXPECT_EQ(find_rule("A501")->default_severity, pdl::Severity::kError);
  EXPECT_EQ(find_rule("A503")->default_severity, pdl::Severity::kWarning);

  // Bare-number typo suggests the bare number; full-id typo the full id.
  EXPECT_EQ(suggest_rule("A510"), "A501");
  EXPECT_EQ(suggest_rule("A403-partiton-aliasing"), "A403-partition-aliasing");
  // Nothing plausibly close: stay silent rather than mislead.
  EXPECT_EQ(suggest_rule("completely-unrelated-rule-name-xyz"), "");
}

// --- SARIF renderer -----------------------------------------------------------

TEST(Sarif, ValidJsonWithRulesAndLocations) {
  pdl::Diagnostics diags;
  pdl::add_finding(diags, pdl::Severity::kError, kMemoryCapacityExceeded,
                   "peak 2 MB over 1 MB", pdl::SourceLoc{"p.xml", 46, 7},
                   "0/acc");
  pdl::add_finding(diags, pdl::Severity::kWarning, kTransferBoundTask,
                   "quote \" newline \n non-ascii \xc3\xa9",
                   pdl::SourceLoc{"g.graph", 11, 1}, "t0");
  const std::string sarif = render_sarif(diags);
  const testjson::ParseResult parsed = testjson::parse(sarif);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "2.1.0"));
  EXPECT_TRUE(testjson::contains_string(parsed, kMemoryCapacityExceeded));
  EXPECT_TRUE(testjson::contains_string(parsed, "pdlcheck"));
  EXPECT_TRUE(
      testjson::contains_string(parsed, "quote \" newline \n non-ascii \xc3\xa9"));
  // Severity mapping: error -> error, warning -> warning.
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":46"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\":7"), std::string::npos);
}

TEST(Sarif, EmptyFindingsStillValid) {
  const pdl::Diagnostics diags;
  const testjson::ParseResult parsed = testjson::parse(render_sarif(diags));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(render_sarif(diags).find("\"results\":[]"), std::string::npos);
}

TEST(Sarif, InfoMapsToNoteAndAdHocDiagnosticsKeepNoRuleId) {
  pdl::Diagnostics diags;
  pdl::add_info(diags, "just a note");
  const std::string sarif = render_sarif(diags);
  const testjson::ParseResult parsed = testjson::parse(sarif);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(sarif.find("\"level\":\"note\""), std::string::npos);
  EXPECT_EQ(sarif.find("ruleId"), std::string::npos);
}

// --- Task-graph fixture format ------------------------------------------------

TEST(GraphIo, ParsesBuffersTasksAndOptions) {
  auto graph = parse_graph_text(R"(# comment
buffer a 2MB
buffer b 64kB 0   # placed at an explicit base
task t0 write=a flops=1e6
task t1 read=a rw=b after=t0
)");
  ASSERT_TRUE(graph.ok()) << graph.error().str();
  const starvm::TaskGraph& g = graph.value();
  ASSERT_EQ(g.buffers().size(), 2u);
  EXPECT_EQ(g.buffers()[0].bytes, 2u * 1000 * 1000);
  EXPECT_EQ(g.buffers()[1].bytes, 64u * 1000);
  EXPECT_EQ(g.buffers()[1].base, 0u);
  ASSERT_EQ(g.tasks().size(), 2u);
  EXPECT_EQ(g.tasks()[0].flops, 1e6);
  ASSERT_EQ(g.tasks()[1].accesses.size(), 2u);
  EXPECT_EQ(g.tasks()[1].accesses[0].mode, starvm::Access::kRead);
  EXPECT_EQ(g.tasks()[1].accesses[1].mode, starvm::Access::kReadWrite);
  ASSERT_EQ(g.tasks()[1].declared_deps.size(), 1u);
  EXPECT_EQ(g.tasks()[1].declared_deps[0], 0);
  // SourceLocs carry file:line for diagnostics.
  EXPECT_EQ(g.tasks()[0].loc.line, 4);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_FALSE(parse_graph_text("buffer x\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer x nan\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer x 1\nbuffer x 1\n").ok());
  EXPECT_FALSE(parse_graph_text("task t read=missing\n").ok());
  EXPECT_FALSE(parse_graph_text("task t after=missing\n").ok());
  EXPECT_FALSE(parse_graph_text("task t bogus=1\n").ok());
  EXPECT_FALSE(parse_graph_text("task t flops=-1\n").ok());
  EXPECT_FALSE(parse_graph_text("frobnicate\n").ok());
  // Error messages carry file:line.
  const auto bad = parse_graph_text("buffer ok 1\nbuffer ok 1\n", "f.graph");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().where, "f.graph:2");
}

TEST(GraphIo, RejectsWrappingExplicitBase) {
  const auto wrapped =
      parse_graph_text("buffer x 2 18446744073709551615\n");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_NE(wrapped.error().message.find("wraps"), std::string::npos);
}

}  // namespace
}  // namespace analysis
