// Smoke tests for the command-line tools: drive real binaries end-to-end
// through the shell, the way a downstream user would.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "json_checker.hpp"
#include "util/string_util.hpp"

namespace {

const std::string kCascabelc = std::string(PDL_BINARY_DIR) + "/src/tools/cascabelc";
const std::string kPdltool = std::string(PDL_BINARY_DIR) + "/src/tools/pdltool";
const std::string kPdlcheck = std::string(PDL_BINARY_DIR) + "/src/tools/pdlcheck";

std::string temp_path(const std::string& name) {
  // PID-qualified: ctest runs each test in its own process, often in
  // parallel, and a shared fixed name lets concurrent tests clobber each
  // other's files.
  return testing::TempDir() + "/" + std::to_string(getpid()) + "." + name;
}

/// Run a command, capture stdout+stderr, return exit code.
int run(const std::string& command, std::string* output = nullptr) {
  const std::string out_file = temp_path("tool_output.txt");
  const int rc = std::system((command + " > " + out_file + " 2>&1").c_str());
  if (output != nullptr) {
    *output = pdl::util::read_file(out_file).value_or("");
  }
  return WEXITSTATUS(rc);
}

constexpr const char* kAnnotatedProgram = R"(
#pragma cascabel task : x86 : Ivecadd : vecadd01 : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}
int main() {
  const int N = 64;
  double A[64] = {0};
  double B[64] = {0};
#pragma cascabel execute Ivecadd : cpu (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B, N);
  return 0;
}
)";

class ToolsTest : public testing::Test {
 protected:
  void SetUp() override {
    // A target PDL produced by pdltool itself (plain system(): the run()
    // helper adds its own stdout redirect).
    pdl_path_ = temp_path("target.pdl.xml");
    ASSERT_EQ(
        std::system((kPdltool + " discover --gpus > " + pdl_path_).c_str()), 0);
    input_path_ = temp_path("input.cpp");
    ASSERT_TRUE(pdl::util::write_file(input_path_, kAnnotatedProgram));
  }
  std::string pdl_path_;
  std::string input_path_;
};

TEST_F(ToolsTest, PdltoolValidateAcceptsDiscoveredPlatform) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " validate " + pdl_path_, &output), 0) << output;
  EXPECT_NE(output.find("structure OK"), std::string::npos);
}

TEST_F(ToolsTest, PdltoolQuerySummary) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " query " + pdl_path_ + " summary", &output), 0);
  EXPECT_NE(output.find("workers:"), std::string::npos);
  EXPECT_EQ(run(kPdltool + " query " + pdl_path_ + " workers", &output), 0);
  EXPECT_NE(output.find("arch=gpu"), std::string::npos);
  EXPECT_EQ(run(kPdltool + " query " + pdl_path_ + " interconnects", &output), 0);
  EXPECT_NE(output.find("PCIe"), std::string::npos);
}

TEST_F(ToolsTest, PdltoolMatch) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " match " + pdl_path_ + " 'M[W(ARCHITECTURE=gpu)x2]'",
                &output),
            0);
  EXPECT_NE(output.find("MATCH"), std::string::npos);

  EXPECT_EQ(run(kPdltool + " match " + pdl_path_ + " 'M[W(ARCHITECTURE=spe)]'",
                &output),
            1);
  EXPECT_NE(output.find("NO MATCH"), std::string::npos);
}

TEST_F(ToolsTest, PdltoolRejectsInvalidUsage) {
  EXPECT_EQ(run(kPdltool.c_str()), 2);
  EXPECT_EQ(run(kPdltool + " validate /does/not/exist.xml"), 1);
  EXPECT_EQ(run(kPdltool + " query " + pdl_path_ + " nonsense"), 2);
}

TEST_F(ToolsTest, PdltoolPathShowsHopsAndCost) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " path " + pdl_path_ + " 0 gpu1 1048576", &output), 0)
      << output;
  EXPECT_NE(output.find("0 -> gpu1 via PCIe"), std::string::npos);
  EXPECT_NE(output.find("modeled transfer of 1048576 bytes"), std::string::npos);

  EXPECT_EQ(run(kPdltool + " path " + pdl_path_ + " 0 ghost", &output), 1);
  EXPECT_NE(output.find("no path"), std::string::npos);
}

TEST_F(ToolsTest, PdltoolXsdIsWellFormed) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " xsd", &output), 0);
  EXPECT_NE(output.find("<xs:schema"), std::string::npos);
  EXPECT_NE(output.find("oclDevicePropertyType"), std::string::npos);
}

TEST_F(ToolsTest, PdltoolDiffDetectsChanges) {
  // Identical files: exit 0, "(no differences)".
  std::string output;
  EXPECT_EQ(run(kPdltool + " diff " + pdl_path_ + " " + pdl_path_, &output), 0);
  EXPECT_NE(output.find("(no differences)"), std::string::npos);

  // A modified copy: exit 1 with a property-changed line.
  const std::string modified = temp_path("modified.pdl.xml");
  auto text = pdl::util::read_file(pdl_path_);
  ASSERT_TRUE(text.has_value());
  ASSERT_TRUE(pdl::util::write_file(
      modified, pdl::util::replace_all(*text, ">x86<", ">arm<")));
  EXPECT_EQ(run(kPdltool + " diff " + pdl_path_ + " " + modified, &output), 1);
  EXPECT_NE(output.find("property-changed"), std::string::npos);
}

TEST_F(ToolsTest, CascabelcVariantsFlagMergesExpertFile) {
  const std::string variants_path = temp_path("expert.cpp");
  ASSERT_TRUE(pdl::util::write_file(variants_path, R"(
#pragma cascabel task : cuda : Ivecadd : vecadd_expert : ( A: readwrite, B: read )
void vecadd_expert_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
)"));
  const std::string out_cpp = temp_path("gen_with_variants.cpp");
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + input_path_ +
                    " --variants " + variants_path + " --output " + out_cpp,
                &output),
            0)
      << output;
}

TEST_F(ToolsTest, CascabelcTranslatesAndWritesOutputs) {
  const std::string out_cpp = temp_path("generated.cpp");
  const std::string makefile = temp_path("Makefile.generated");
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + input_path_ +
                    " --output " + out_cpp + " --makefile " + makefile +
                    " --exe vecadd_prog",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("1 variant(s), 1 call site(s)"), std::string::npos);

  const auto generated = pdl::util::read_file(out_cpp);
  ASSERT_TRUE(generated.has_value());
  EXPECT_NE(generated->find("::cascabel::rt::execute"), std::string::npos);

  const auto plan = pdl::util::read_file(makefile);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NE(plan->find("vecadd_prog"), std::string::npos);
  EXPECT_NE(plan->find("nvcc"), std::string::npos);  // gpu workers in the PDL
}

TEST_F(ToolsTest, CascabelcPrintsSelectionReport) {
  const std::string out_cpp = temp_path("gen_sel.cpp");
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + input_path_ +
                    " --output " + out_cpp + " --print-selection",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("selection for target"), std::string::npos);
  EXPECT_NE(output.find("Ivecadd:"), std::string::npos);
  EXPECT_NE(output.find("fallback"), std::string::npos);
}

TEST_F(ToolsTest, CascabelcWritesMergedTraceAndMetrics) {
  const std::string out_cpp = temp_path("gen_obs.cpp");
  const std::string trace = temp_path("trace.json");
  const std::string metrics = temp_path("metrics.json");
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + input_path_ +
                    " --output " + out_cpp + " --trace-out=" + trace +
                    " --metrics-out " + metrics,
                &output),
            0)
      << output;

  // The trace is one Chrome trace with both clock lanes and at least one
  // scheduler decision from the schedule preview.
  const auto trace_text = pdl::util::read_file(trace);
  ASSERT_TRUE(trace_text.has_value());
  const auto trace_json = testjson::parse(*trace_text);
  ASSERT_TRUE(trace_json.ok) << trace_json.error;
  EXPECT_TRUE(testjson::contains_string(trace_json, "toolchain wall time"));
  EXPECT_TRUE(testjson::contains_string(trace_json, "engine virtual time"));
  EXPECT_TRUE(testjson::contains_string(trace_json, "cascabel.translate"));
  EXPECT_NE(trace_text->find("\"ph\":\"i\""), std::string::npos) << *trace_text;

  // The metrics snapshot parses and carries counters from several layers.
  const auto metrics_text = pdl::util::read_file(metrics);
  ASSERT_TRUE(metrics_text.has_value());
  const auto metrics_json = testjson::parse(*metrics_text);
  ASSERT_TRUE(metrics_json.ok) << metrics_json.error;
  for (const char* name :
       {"xml.documents_parsed", "pdl.validations", "cascabel.translations",
        "starvm.tasks_completed", "thread_pool.tasks_executed"}) {
    EXPECT_TRUE(testjson::contains_string(metrics_json, name))
        << name << " missing from " << *metrics_text;
  }
}

TEST_F(ToolsTest, PdltoolWritesMetricsSnapshot) {
  const std::string metrics = temp_path("pdltool_metrics.json");
  std::string output;
  EXPECT_EQ(run(kPdltool + " validate " + pdl_path_ +
                    " --metrics-out=" + metrics,
                &output),
            0)
      << output;
  const auto text = pdl::util::read_file(metrics);
  ASSERT_TRUE(text.has_value());
  const auto parsed = testjson::parse(*text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "pdl.validations"));
  EXPECT_TRUE(testjson::contains_string(parsed, "xml.nodes_parsed"));
}

TEST_F(ToolsTest, EnvVarsDriveObservabilityWithoutFlags) {
  const std::string out_cpp = temp_path("gen_env.cpp");
  const std::string trace = temp_path("env_trace.json");
  std::string output;
  EXPECT_EQ(run("PDL_TRACE=" + trace + " " + kCascabelc + " --pdl " +
                    pdl_path_ + " --input " + input_path_ + " --output " +
                    out_cpp,
                &output),
            0)
      << output;
  const auto text = pdl::util::read_file(trace);
  ASSERT_TRUE(text.has_value());
  const auto parsed = testjson::parse(*text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "toolchain wall time"));
}

TEST_F(ToolsTest, PdltoolLintPassesCleanPlatform) {
  std::string output;
  EXPECT_EQ(run(kPdltool + " lint " + pdl_path_, &output), 0) << output;
  EXPECT_NE(output.find("0 error(s)"), std::string::npos);
}

TEST_F(ToolsTest, CascabelcAnalyzeReportsInsteadOfTranslating) {
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + input_path_ +
                    " --analyze",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error(s)"), std::string::npos);
}

TEST_F(ToolsTest, PdlcheckLintsCleanPlatform) {
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " " + pdl_path_, &output), 0) << output;
  EXPECT_NE(output.find("0 error(s), 0 warning(s)"), std::string::npos);
}

TEST_F(ToolsTest, PdlcheckFlagsStructuralErrorsWithRuleIds) {
  const std::string bad = temp_path("bad_platform.pdl.xml");
  ASSERT_TRUE(pdl::util::write_file(bad, R"(<?xml version="1.0"?>
<Platform name="bad" version="1.0">
  <Master id="m0" quantity="1">
    <Worker id="w" quantity="1"></Worker>
    <Worker id="w" quantity="1"></Worker>
  </Master>
</Platform>)"));
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " " + bad, &output), 1);
  EXPECT_NE(output.find("[V6]"), std::string::npos) << output;
  EXPECT_NE(output.find("bad_platform.pdl.xml:"), std::string::npos) << output;
}

/// A platform whose only finding is the warning-severity A101 (worker
/// memory without a declared interconnect path).
std::string write_warning_platform() {
  const std::string path = temp_path("warn_platform.pdl.xml");
  EXPECT_TRUE(pdl::util::write_file(path, R"(<?xml version="1.0"?>
<Platform name="warn" version="1.0">
  <Master id="m0" quantity="1">
    <Worker id="w0" quantity="1">
      <MemoryRegion id="mr_w0"></MemoryRegion>
    </Worker>
  </Master>
</Platform>)"));
  return path;
}

TEST_F(ToolsTest, PdlcheckWerrorPromotesWarnings) {
  const std::string path = write_warning_platform();
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " " + path, &output), 0) << output;
  EXPECT_NE(output.find("[A101-unreachable-worker-memory]"), std::string::npos);
  EXPECT_EQ(run(kPdlcheck + " --werror " + path, &output), 1);
}

TEST_F(ToolsTest, PdlcheckRuleFlagOverridesSeverityAndDisables) {
  const std::string path = write_warning_platform();
  std::string output;
  // Promote the single warning to an error: exit 1.
  EXPECT_EQ(run(kPdlcheck + " --rule A101=error " + path, &output), 1);
  EXPECT_NE(output.find("error:"), std::string::npos);
  // Turn the rule off entirely: clean output.
  EXPECT_EQ(run(kPdlcheck + " --rule A101=off " + path, &output), 0);
  EXPECT_NE(output.find("0 error(s), 0 warning(s)"), std::string::npos);
  // Unknown rules are rejected with usage exit code 2.
  EXPECT_EQ(run(kPdlcheck + " --rule A999=off " + path, &output), 2);
}

TEST_F(ToolsTest, PdlcheckUnknownRuleSuggestsNearestId) {
  std::string output;
  // Bare-number typo: suggested in bare-number form.
  EXPECT_EQ(run(kPdlcheck + " --rule A510=off " + pdl_path_, &output), 2);
  EXPECT_NE(output.find("unknown rule 'A510'"), std::string::npos) << output;
  EXPECT_NE(output.find("did you mean 'A501'"), std::string::npos) << output;
  // Full-id typo: suggested in full-id form.
  EXPECT_EQ(
      run(kPdlcheck + " --rule A403-partiton-aliasing=error " + pdl_path_,
          &output),
      2);
  EXPECT_NE(output.find("did you mean 'A403-partition-aliasing'"),
            std::string::npos)
      << output;
  // Nothing plausibly close: a plain unknown-rule error, no suggestion.
  EXPECT_EQ(run(kPdlcheck + " --rule zzz-unrelated=off " + pdl_path_, &output),
            2);
  EXPECT_EQ(output.find("did you mean"), std::string::npos) << output;
}

TEST_F(ToolsTest, PdlcheckPlanFiresCapacityRulesOnFixtures) {
  const std::string platform =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/undersized.pdl.xml";
  const std::string graph =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/oversubscribed.graph";
  std::string output;
  // A501 is an error: exit 1.
  EXPECT_EQ(
      run(kPdlcheck + " --plan --graph " + graph + " " + platform, &output), 1);
  EXPECT_NE(output.find("schedule plan:"), std::string::npos) << output;
  EXPECT_NE(output.find("makespan:"), std::string::npos);
  EXPECT_NE(output.find("[A501-memory-capacity-exceeded]"), std::string::npos)
      << output;
  EXPECT_NE(output.find("[A503-transfer-bound-task]"), std::string::npos);
  EXPECT_NE(output.find("[A505-interconnect-oversubscribed]"),
            std::string::npos);
  // Byte-identical across runs: the modeled schedule is deterministic.
  std::string again;
  EXPECT_EQ(
      run(kPdlcheck + " --plan --graph " + graph + " " + platform, &again), 1);
  EXPECT_EQ(output, again);
  // Shipped platforms stay clean under --plan (no graph: lint only).
  const std::string testbed = std::string(PDL_SOURCE_DIR) +
                              "/platforms/testbed-starpu-2gpu.pdl.xml";
  EXPECT_EQ(run(kPdlcheck + " --plan " + testbed, &output), 0) << output;
}

TEST_F(ToolsTest, PdlcheckPlanReportsAccuracyRulesIdenticallyAcrossFormats) {
  // The committed A7xx fixture pair: a 10-step recurrence whose bound
  // (floored by the platform's fp32 ACCURACY) breaks the tolerance. The
  // same two findings must surface in text, JSON and SARIF — same rules,
  // same count, same locations — and A701 is an error, so exit 1.
  const std::string platform =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/fp32-testbed.pdl.xml";
  const std::string graph =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/tolerance.graph";

  std::string text;
  EXPECT_EQ(run(kPdlcheck + " --plan --graph " + graph + " " + platform, &text),
            1);
  EXPECT_NE(text.find("[A701-tolerance-exceeded]"), std::string::npos) << text;
  EXPECT_NE(text.find("[A703-accumulation-blowup]"), std::string::npos) << text;
  // The text findings carry the fixture's file:line anchors.
  EXPECT_NE(text.find("tolerance.graph:15:"), std::string::npos) << text;
  EXPECT_NE(text.find("tolerance.graph:27:"), std::string::npos) << text;

  std::string json;
  EXPECT_EQ(run(kPdlcheck + " --format=json --plan --graph " + graph + " " +
                    platform,
                &json),
            1);
  const testjson::ParseResult parsed_json = testjson::parse(json);
  ASSERT_TRUE(parsed_json.ok) << parsed_json.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed_json, "A701-tolerance-exceeded"));
  EXPECT_TRUE(testjson::contains_string(parsed_json, "A703-accumulation-blowup"));

  std::string sarif;
  EXPECT_EQ(run(kPdlcheck + " --format=sarif --plan --graph " + graph + " " +
                    platform,
                &sarif),
            1);
  const testjson::ParseResult parsed_sarif = testjson::parse(sarif);
  ASSERT_TRUE(parsed_sarif.ok) << parsed_sarif.error << "\n" << sarif;
  EXPECT_TRUE(testjson::contains_string(parsed_sarif, "A701-tolerance-exceeded"));
  EXPECT_TRUE(testjson::contains_string(parsed_sarif, "A703-accumulation-blowup"));
  // The A703 accumulation chain rides along as a SARIF logical location.
  EXPECT_TRUE(testjson::contains_string(
      parsed_sarif, "s0->s1->s2->s3->s4->s5->s6->s7->s8->s9"))
      << sarif;

  // Identical finding multiset across formats: count occurrences per rule.
  for (const char* rule :
       {"A701-tolerance-exceeded", "A703-accumulation-blowup"}) {
    std::size_t in_text = 0, in_json = 0, in_sarif = 0;
    for (std::size_t p = text.find(rule); p != std::string::npos;
         p = text.find(rule, p + 1))
      ++in_text;
    for (std::size_t p = json.find(rule); p != std::string::npos;
         p = json.find(rule, p + 1))
      ++in_json;
    // SARIF mentions each rule in the result and once in the rules table.
    for (std::size_t p = sarif.find(std::string("\"ruleId\":\"") + rule);
         p != std::string::npos;
         p = sarif.find(std::string("\"ruleId\":\"") + rule, p + 1))
      ++in_sarif;
    EXPECT_EQ(in_text, 1u) << rule;
    EXPECT_EQ(in_json, 1u) << rule;
    EXPECT_EQ(in_sarif, 1u) << rule;
  }

  // pdltool plan surfaces the same analysis.
  std::string plan;
  EXPECT_EQ(run(kPdltool + " plan " + platform + " " + graph, &plan), 1);
  EXPECT_NE(plan.find("[A701-tolerance-exceeded]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("[A703-accumulation-blowup]"), std::string::npos);

  // Demoting A701 drops the exit code: the guard is tunable like every
  // other rule family.
  EXPECT_EQ(run(kPdlcheck + " --rule A701=info --plan --graph " + graph + " " +
                platform),
            0);
}

TEST_F(ToolsTest, PdlcheckSarifOutputIsValidJson) {
  const std::string platform =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/undersized.pdl.xml";
  const std::string graph =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/oversubscribed.graph";
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " --format=sarif --plan --graph " + graph + " " +
                    platform,
                &output),
            1);
  const testjson::ParseResult parsed = testjson::parse(output);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << output;
  EXPECT_TRUE(testjson::contains_string(parsed, "2.1.0"));
  EXPECT_TRUE(testjson::contains_string(parsed, "pdlcheck"));
  EXPECT_TRUE(
      testjson::contains_string(parsed, "A501-memory-capacity-exceeded"));
  EXPECT_TRUE(
      testjson::contains_string(parsed, "A505-interconnect-oversubscribed"));
  // A clean run still renders a valid (empty-results) SARIF document.
  EXPECT_EQ(run(kPdlcheck + " --format=sarif " + pdl_path_, &output), 0);
  EXPECT_TRUE(testjson::parse(output).ok) << output;
}

TEST_F(ToolsTest, PdltoolPlanSubcommand) {
  const std::string platform =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/undersized.pdl.xml";
  const std::string graph =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/oversubscribed.graph";
  std::string output;
  EXPECT_EQ(run(kPdltool + " plan " + platform + " " + graph, &output), 1);
  EXPECT_NE(output.find("schedule plan:"), std::string::npos) << output;
  EXPECT_NE(output.find("critical path:"), std::string::npos);
  EXPECT_NE(output.find("[A501-memory-capacity-exceeded]"), std::string::npos);
  // Bad inputs fail cleanly.
  EXPECT_EQ(run(kPdltool + " plan " + platform + " /does/not/exist.graph"), 1);
  EXPECT_EQ(run(kPdltool + " plan"), 2);
}

TEST_F(ToolsTest, PdlcheckJsonValidatesAndCarriesFindings) {
  const std::string path = write_warning_platform();
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " --format=json " + path, &output), 0) << output;
  const auto parsed = testjson::parse(output);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << output;
  EXPECT_TRUE(testjson::contains_string(parsed, "findings"));
  EXPECT_TRUE(testjson::contains_string(parsed, "summary"));
  EXPECT_TRUE(testjson::contains_string(parsed, "A101-unreachable-worker-memory"));
}

TEST_F(ToolsTest, PdlcheckListRulesShowsCatalog) {
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " --list-rules", &output), 0);
  for (const char* id :
       {"A101-unreachable-worker-memory", "A301-dead-variant",
        "A403-partition-aliasing", "A404-dependency-cycle"}) {
    EXPECT_NE(output.find(id), std::string::npos) << id;
  }
}

TEST_F(ToolsTest, PdlcheckAnalyzesProgramAgainstPlatform) {
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " --program " + input_path_ + " " + pdl_path_, &output),
            0)
      << output;
}

TEST_F(ToolsTest, PdlcheckDetectsSeededRaceUnderRelaxedModel) {
  // Two unordered execute sites writing the same buffer: clean under the
  // engine's sequential-consistency model, a write-write race when only
  // declared dependencies order tasks.
  const std::string racy = temp_path("racy.cpp");
  ASSERT_TRUE(pdl::util::write_file(racy, R"(
#pragma cascabel task : x86 : Ifill : fill01 : ( A: write )
void fill(double *A, int n) { for (int i = 0; i < n; ++i) A[i] = 7.0; }
int main() {
  const int N = 64;
  double A[64] = {0};
#pragma cascabel execute Ifill : cpu (A:BLOCK:N)
  fill(A, N);
#pragma cascabel execute Ifill : cpu (A:BLOCK:N)
  fill(A, N);
  return 0;
}
)"));
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " --program " + racy + " " + pdl_path_, &output), 0)
      << output;
  EXPECT_EQ(run(kPdlcheck + " --relaxed --program " + racy + " " + pdl_path_,
                &output),
            1)
      << output;
  EXPECT_NE(output.find("[A401-unordered-write-write]"), std::string::npos) << output;
}

TEST_F(ToolsTest, PdlcheckGoldenLintShippedPlatformsAndExamples) {
  // Every platform description the repo ships must lint without errors —
  // the same gate CI runs.
  const std::string platforms = std::string(PDL_SOURCE_DIR) + "/platforms";
  std::string output;
  EXPECT_EQ(run(kPdlcheck + " " + platforms + "/cell-be.pdl.xml " + platforms +
                    "/hierarchical.pdl.xml " + platforms +
                    "/testbed-single.pdl.xml " + platforms +
                    "/testbed-starpu.pdl.xml " + platforms +
                    "/testbed-starpu-2gpu.pdl.xml",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("0 error(s)"), std::string::npos);

  // The example programs must analyze cleanly against the paper testbed.
  const std::string testbed = platforms + "/testbed-starpu-2gpu.pdl.xml";
  for (const char* example :
       {"vecadd_offload.cpp", "dgemm_pipeline.cpp", "cell_offload.cpp",
        "cholesky_dag.cpp"}) {
    const std::string program =
        std::string(PDL_SOURCE_DIR) + "/examples/" + example;
    EXPECT_EQ(run(kPdlcheck + " --program " + program + " " + testbed, &output), 0)
        << example << ":\n" << output;
  }
}

TEST_F(ToolsTest, PdlcheckRejectsUnknownFlagsAndMissingFiles) {
  std::string output;
  EXPECT_EQ(run(kPdlcheck.c_str(), &output), 2);
  EXPECT_EQ(run(kPdlcheck + " --nonsense " + pdl_path_, &output), 2);
  EXPECT_EQ(run(kPdlcheck + " /does/not/exist.xml", &output), 1);
}

TEST_F(ToolsTest, CascabelcFailsCleanlyOnBadInputs) {
  EXPECT_EQ(run(kCascabelc.c_str()), 2);
  EXPECT_EQ(run(kCascabelc + " --pdl /nope.xml --input " + input_path_), 1);
  const std::string bad_input = temp_path("bad.cpp");
  ASSERT_TRUE(pdl::util::write_file(
      bad_input, "#pragma cascabel task : x86 : I : v : (A: read)\nint x;\n"));
  EXPECT_EQ(run(kCascabelc + " --pdl " + pdl_path_ + " --input " + bad_input), 1);
}

TEST_F(ToolsTest, PdltoolProfileReportsCriticalPathAndDrift) {
  const std::string platform =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/undersized.pdl.xml";
  const std::string graph =
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/dgemm_pipeline.graph";
  std::string output;
  EXPECT_EQ(run(kPdltool + " profile " + platform + " " + graph, &output), 0)
      << output;
  EXPECT_NE(output.find("measured critical path"), std::string::npos);
  EXPECT_NE(output.find("critical-path attribution"), std::string::npos);
  EXPECT_NE(output.find("rate drift"), std::string::npos);
  // The instance labels collapse to one dgemm codelet per device row.
  EXPECT_NE(output.find("dgemm @ "), std::string::npos);
  EXPECT_NE(output.find("model vs measured"), std::string::npos);
  EXPECT_NE(output.find("reduce"), std::string::npos);

  EXPECT_EQ(run(kPdltool + " profile " + platform + " /no/such.graph"), 1);
}

TEST_F(ToolsTest, CascabelcProfileAndFlightDump) {
  const std::string platform = std::string(PDL_SOURCE_DIR) +
                               "/platforms/testbed-starpu-2gpu.pdl.xml";
  const std::string input = std::string(PDL_SOURCE_DIR) +
                            "/tests/fixtures/dgemm_pipeline.cascabel.cpp";
  const std::string out_cpp = temp_path("profile_gen.cpp");
  std::string output;
  EXPECT_EQ(run(kCascabelc + " --pdl " + platform + " --input " + input +
                    " --output " + out_cpp + " --profile",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("measured critical path"), std::string::npos);
  EXPECT_NE(output.find("rate drift"), std::string::npos);
  EXPECT_NE(output.find("model vs measured"), std::string::npos);
  EXPECT_NE(output.find("flight recorder:"), std::string::npos);

  // A fault plan that outlives the retry budget forces the preview's
  // wait_all to fail; PDL_FLIGHT_DUMP must leave the post-mortem behind.
  const std::string prefix = temp_path("tool_flight");
  EXPECT_EQ(run("PDL_FLIGHT_DUMP=" + prefix + " " + kCascabelc + " --pdl " +
                    platform + " --input " + input + " --output " + out_cpp +
                    " --profile --fault-plan 'fail:task=2,attempts=9'",
                &output),
            0)
      << output;
  const auto jsonl = pdl::util::read_file(prefix + ".jsonl");
  ASSERT_TRUE(jsonl.has_value()) << "flight dump missing";
  EXPECT_NE(jsonl->find("\"reason\":\"wait_all_failure\""), std::string::npos);
  const auto trace = pdl::util::read_file(prefix + ".trace.json");
  ASSERT_TRUE(trace.has_value());
  EXPECT_NE(trace->find("flight recorder"), std::string::npos);
}

}  // namespace
