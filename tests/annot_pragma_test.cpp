#include <gtest/gtest.h>

#include "annot/pragma_parser.hpp"

namespace cascabel {
namespace {

TEST(Classify, DistinguishesKinds) {
  EXPECT_EQ(classify_pragma("cascabel task : x : I : n : (A: read)"),
            PragmaKind::kTask);
  EXPECT_EQ(classify_pragma("cascabel execute I : g (A:BLOCK:1)"),
            PragmaKind::kExecute);
  EXPECT_EQ(classify_pragma("cascabel frobnicate"), PragmaKind::kUnknown);
  EXPECT_EQ(classify_pragma("omp parallel"), PragmaKind::kUnknown);
}

// The paper's Listing 3 task pragma, verbatim structure.
TEST(TaskPragma, ParsesPaperListing3) {
  auto p = parse_task_pragma(
      "cascabel task : x86 : Ivecadd : vecadd01 : ( A: readwrite, B : read )");
  ASSERT_TRUE(p.ok()) << p.error().str();
  const TaskPragma& t = p.value();
  ASSERT_EQ(t.target_platforms.size(), 1u);
  EXPECT_EQ(t.target_platforms[0], "x86");
  EXPECT_EQ(t.task_interface, "Ivecadd");
  EXPECT_EQ(t.variant_name, "vecadd01");
  ASSERT_EQ(t.params.size(), 2u);
  EXPECT_EQ(t.params[0].name, "A");
  EXPECT_EQ(t.params[0].mode, AccessMode::kReadWrite);
  EXPECT_EQ(t.params[1].name, "B");
  EXPECT_EQ(t.params[1].mode, AccessMode::kRead);
}

TEST(TaskPragma, MultiplePlatforms) {
  auto p = parse_task_pragma(
      "cascabel task : cuda, opencl, cell : Idgemm : dgemm_gpu : (C: write)");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().target_platforms.size(), 3u);
  EXPECT_EQ(p.value().target_platforms[1], "opencl");
}

TEST(TaskPragma, InlinePatternEntriesKeepTheirCommas) {
  auto p = parse_task_pragma(
      "cascabel task : x86, pattern(M[Wx2,W(ARCHITECTURE=gpu)x1]) "
      ": I : tuned : (A: read)");
  ASSERT_TRUE(p.ok()) << p.error().str();
  ASSERT_EQ(p.value().target_platforms.size(), 2u);
  EXPECT_EQ(p.value().target_platforms[0], "x86");
  EXPECT_EQ(p.value().target_platforms[1],
            "pattern(M[Wx2,W(ARCHITECTURE=gpu)x1])");
}

TEST(TaskPragma, EmptyParameterListIsAllowed) {
  auto p = parse_task_pragma("cascabel task : x86 : Inop : nop01 : ()");
  ASSERT_TRUE(p.ok()) << p.error().str();
  EXPECT_TRUE(p.value().params.empty());
}

TEST(TaskPragma, RejectsMalformedInputs) {
  EXPECT_FALSE(parse_task_pragma("cascabel task : x86 : I : n").ok());  // 3 fields
  EXPECT_FALSE(parse_task_pragma("cascabel task : x86 : I : n : (A)").ok());  // no mode
  EXPECT_FALSE(
      parse_task_pragma("cascabel task : x86 : I : n : (A: sideways)").ok());
  EXPECT_FALSE(
      parse_task_pragma("cascabel task : x86 : 9bad : n : (A: read)").ok());
  EXPECT_FALSE(parse_task_pragma("cascabel task :  : I : n : (A: read)").ok());
  EXPECT_FALSE(parse_task_pragma("cascabel execute I : g").ok());
  EXPECT_FALSE(parse_task_pragma("not a pragma").ok());
}

TEST(TaskPragma, AccessModesAreCaseInsensitive) {
  auto p = parse_task_pragma(
      "cascabel task : x86 : I : n : (A: READWRITE, B: Read, C: WRITE)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().params[0].mode, AccessMode::kReadWrite);
  EXPECT_EQ(p.value().params[1].mode, AccessMode::kRead);
  EXPECT_EQ(p.value().params[2].mode, AccessMode::kWrite);
}

// The paper's Listing 4 execute pragma.
TEST(ExecutePragma, ParsesPaperListing4) {
  auto p = parse_execute_pragma(
      "cascabel execute Ivecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)");
  ASSERT_TRUE(p.ok()) << p.error().str();
  const ExecutePragma& e = p.value();
  EXPECT_EQ(e.task_interface, "Ivecadd");
  EXPECT_EQ(e.execution_group, "executionset01");
  ASSERT_EQ(e.distributions.size(), 2u);
  EXPECT_EQ(e.distributions[0].param, "A");
  EXPECT_EQ(e.distributions[0].kind, DistributionKind::kBlock);
  ASSERT_EQ(e.distributions[0].sizes.size(), 1u);
  EXPECT_EQ(e.distributions[0].sizes[0], "N");
}

TEST(ExecutePragma, MatrixSizesAndWholeDistribution) {
  auto p = parse_execute_pragma(
      "cascabel execute Idgemm : gset (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)");
  ASSERT_TRUE(p.ok()) << p.error().str();
  ASSERT_EQ(p.value().distributions.size(), 3u);
  EXPECT_EQ(p.value().distributions[0].sizes.size(), 2u);
  EXPECT_EQ(p.value().distributions[2].kind, DistributionKind::kNone);
  EXPECT_EQ(p.value().distributions[2].sizes.size(), 2u);
}

TEST(ExecutePragma, GroupIsOptional) {
  auto p = parse_execute_pragma("cascabel execute Iface (A:CYCLIC:64)");
  ASSERT_TRUE(p.ok()) << p.error().str();
  EXPECT_TRUE(p.value().execution_group.empty());
  EXPECT_EQ(p.value().distributions[0].kind, DistributionKind::kCyclic);
  EXPECT_EQ(p.value().distributions[0].sizes[0], "64");
}

TEST(ExecutePragma, DistributionsAreOptional) {
  auto p = parse_execute_pragma("cascabel execute Iface : mygroup");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().execution_group, "mygroup");
  EXPECT_TRUE(p.value().distributions.empty());
}

TEST(ExecutePragma, RejectsMalformedInputs) {
  EXPECT_FALSE(parse_execute_pragma("cascabel execute ").ok());
  EXPECT_FALSE(parse_execute_pragma("cascabel execute 1bad : g").ok());
  EXPECT_FALSE(parse_execute_pragma("cascabel execute I : g (A:SPIRAL:2)").ok());
  EXPECT_FALSE(parse_execute_pragma("cascabel execute I : g (A:BLOCK:1:2:3)").ok());
  EXPECT_FALSE(parse_execute_pragma("cascabel execute I : g (A:BLOCK:1").ok());
  EXPECT_FALSE(parse_execute_pragma("cascabel task : x : I : n : ()").ok());
}

TEST(ExecutePragma, BlockCyclicSpellings) {
  EXPECT_EQ(parse_execute_pragma("cascabel execute I : g (A:BLOCKCYCLIC:8)")
                .value()
                .distributions[0]
                .kind,
            DistributionKind::kBlockCyclic);
  EXPECT_EQ(parse_execute_pragma("cascabel execute I : g (A:block-cyclic:8)")
                .value()
                .distributions[0]
                .kind,
            DistributionKind::kBlockCyclic);
}

TEST(EnumStrings, RoundTrip) {
  EXPECT_EQ(to_string(AccessMode::kRead), "read");
  EXPECT_EQ(to_string(AccessMode::kWrite), "write");
  EXPECT_EQ(to_string(AccessMode::kReadWrite), "readwrite");
  EXPECT_EQ(to_string(DistributionKind::kBlock), "BLOCK");
  EXPECT_EQ(access_mode_from_string("readwrite"), AccessMode::kReadWrite);
  EXPECT_FALSE(access_mode_from_string("rw").has_value());
  EXPECT_EQ(distribution_from_string("block"), DistributionKind::kBlock);
  EXPECT_EQ(distribution_from_string("whole"), DistributionKind::kNone);
  EXPECT_FALSE(distribution_from_string("diag").has_value());
}

}  // namespace
}  // namespace cascabel
