// Fault-tolerance tests: FaultPlan parsing/determinism, the failure return
// channel, retry/backoff, blacklisting with re-routing, the watchdog, and
// the end-to-end acceptance run (killed accelerator, correct numerics on
// survivors).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "kernels/cholesky.hpp"
#include "kernels/matrix.hpp"
#include "solvers/tiled_cholesky.hpp"
#include "starvm/engine.hpp"

namespace starvm {
namespace {

Codelet make_codelet(std::string name, std::function<void(const ExecContext&)> fn,
                     DeviceKind kind = DeviceKind::kCpu) {
  Codelet c;
  c.name = std::move(name);
  c.impls.push_back(Implementation{kind, std::move(fn)});
  return c;
}

std::shared_ptr<const FaultPlan> plan(std::string_view spec) {
  auto parsed = FaultPlan::parse(spec);
  EXPECT_TRUE(parsed.ok()) << parsed.error().str();
  return std::make_shared<const FaultPlan>(std::move(parsed).value());
}

std::uint64_t count_events(const EngineStats& stats, FaultEvent::Kind kind) {
  std::uint64_t n = 0;
  for (const FaultEvent& e : stats.fault_events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// --- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  auto p = FaultPlan::parse(
      "fail:task=3,attempts=2,device=1; kill:device=2,after=5; "
      "delay:ms=0.5,task=7; random:rate=0.25,seed=42,device=0");
  ASSERT_TRUE(p.ok()) << p.error().str();
  EXPECT_EQ(p.value().rule_count(), 4u);
  EXPECT_FALSE(p.value().empty());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  auto p = FaultPlan::parse("");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().empty());
  EXPECT_FALSE(p.value().decide(1, 1, 0, 0).fail);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("explode:task=1").ok());
  EXPECT_FALSE(FaultPlan::parse("fail:device=1").ok());   // fail needs task=
  EXPECT_FALSE(FaultPlan::parse("kill:after=2").ok());    // kill needs device=
  EXPECT_FALSE(FaultPlan::parse("delay:task=1").ok());    // delay needs ms=
  EXPECT_FALSE(FaultPlan::parse("random:seed=1").ok());   // random needs rate=
  EXPECT_FALSE(FaultPlan::parse("random:rate=1.5").ok());  // rate outside [0,1]
  EXPECT_FALSE(FaultPlan::parse("fail:task").ok());        // not key=value
  EXPECT_FALSE(FaultPlan::parse("fail:task=nope").ok());
}

TEST(FaultPlan, FailRuleMatchesTaskAttemptAndDevice) {
  auto p = FaultPlan::parse("fail:task=3,attempts=2,device=1");
  ASSERT_TRUE(p.ok());
  const FaultPlan& fp = p.value();
  EXPECT_TRUE(fp.decide(3, 1, 1, 0).fail);
  EXPECT_TRUE(fp.decide(3, 2, 1, 0).fail);
  EXPECT_FALSE(fp.decide(3, 3, 1, 0).fail);  // attempts exhausted
  EXPECT_FALSE(fp.decide(3, 1, 0, 0).fail);  // wrong device
  EXPECT_FALSE(fp.decide(4, 1, 1, 0).fail);  // wrong task
}

TEST(FaultPlan, KillRuleFiresAfterCompletions) {
  auto p = FaultPlan::parse("kill:device=1,after=3");
  ASSERT_TRUE(p.ok());
  const FaultPlan& fp = p.value();
  EXPECT_FALSE(fp.decide(9, 1, 1, 2).fail);
  EXPECT_TRUE(fp.decide(9, 1, 1, 3).fail);
  EXPECT_TRUE(fp.decide(9, 5, 1, 100).fail);  // dead forever, every attempt
  EXPECT_FALSE(fp.decide(9, 1, 0, 100).fail);
}

TEST(FaultPlan, DelaysAccumulateAcrossRules) {
  auto p = FaultPlan::parse("delay:ms=2; delay:ms=3,device=1");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value().decide(1, 1, 1, 0).delay_seconds, 0.005);
  EXPECT_DOUBLE_EQ(p.value().decide(1, 1, 0, 0).delay_seconds, 0.002);
  EXPECT_DOUBLE_EQ(p.value().decide(1, 2, 1, 0).delay_seconds, 0.0);  // attempt > 1
}

TEST(FaultPlan, RandomRuleIsDeterministicInPlanInputs) {
  auto p = FaultPlan::parse("random:rate=0.5,seed=7");
  ASSERT_TRUE(p.ok());
  const FaultPlan& fp = p.value();
  // Pure function: same (task, attempt) always decides the same way,
  // regardless of device or how often we ask.
  for (TaskId t = 1; t <= 32; ++t) {
    const bool first = fp.decide(t, 1, 0, 0).fail;
    EXPECT_EQ(fp.decide(t, 1, 1, 5).fail, first);
    EXPECT_EQ(fp.decide(t, 1, 0, 0).fail, first);
  }
  EXPECT_TRUE(FaultPlan::parse("random:rate=1,seed=1").value().decide(1, 1, 0, 0).fail);
  EXPECT_FALSE(FaultPlan::parse("random:rate=0,seed=1").value().decide(1, 1, 0, 0).fail);
}

// --- retry / permanent failure ----------------------------------------------

TEST(FaultTolerance, InjectedFailureRetriesThenSucceeds) {
  EngineConfig config = EngineConfig::cpus(1);
  config.fault_plan = plan("fail:task=1,attempts=1");
  Engine engine(std::move(config));

  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  std::atomic<int> runs{0};
  Codelet c = make_codelet("bump", [&](const ExecContext& ctx) {
    ctx.buffer(0)[0] += 1.0;
    ++runs;
  });
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}, "bump"});
  EXPECT_TRUE(engine.wait_all().ok());

  // The doomed attempt must not have executed the kernel: a retried
  // in-place update would otherwise run twice.
  EXPECT_EQ(runs.load(), 1);
  EXPECT_DOUBLE_EQ(data[0], 1.0);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.task_failures, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failed_tasks, 0u);
  EXPECT_EQ(count_events(stats, FaultEvent::Kind::kFailure), 1u);
  EXPECT_EQ(count_events(stats, FaultEvent::Kind::kRetry), 1u);
  ASSERT_EQ(stats.devices.size(), 1u);
  EXPECT_EQ(stats.devices[0].failures, 1u);
  EXPECT_FALSE(stats.devices[0].blacklisted);
}

TEST(FaultTolerance, BudgetExhaustionFailsTaskAndCancelsSuccessors) {
  EngineConfig config = EngineConfig::cpus(1);
  config.fault_plan = plan("fail:task=1,attempts=99");
  config.fault_tolerance.max_retries = 2;
  config.fault_tolerance.blacklist_after = 0;  // isolate the retry budget
  Engine engine(std::move(config));

  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet w = make_codelet("w", [](const ExecContext&) {});
  engine.submit(TaskDesc{&w, {{h, Access::kReadWrite}}, "writer"});
  engine.submit(TaskDesc{&w, {{h, Access::kReadWrite}}, "dependent"});

  const auto status = engine.wait_all();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().str().find("1 task(s) failed"), std::string::npos);
  EXPECT_NE(status.error().str().find("cancelled"), std::string::npos);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.task_failures, 3u);  // initial + 2 retries
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failed_tasks, 1u);
  EXPECT_EQ(stats.cancelled_tasks, 1u);
  ASSERT_EQ(stats.errors.size(), 1u);
  EXPECT_NE(stats.errors[0].find("writer"), std::string::npos);

  // Failures are sticky: draining again still reports the error, and a new
  // task touching the poisoned handle is cancelled at submission.
  EXPECT_FALSE(engine.wait_all().ok());
  engine.submit(TaskDesc{&w, {{h, Access::kRead}}, "late"});
  EXPECT_FALSE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().cancelled_tasks, 2u);
}

TEST(FaultTolerance, ExecContextFailReportsThroughStatus) {
  Engine engine(EngineConfig::cpus(1));  // no injection: organic failure
  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  std::atomic<int> runs{0};
  Codelet flaky = make_codelet("flaky", [&](const ExecContext& ctx) {
    if (runs.fetch_add(1) == 0) ctx.fail("numerical breakdown");
  });
  engine.submit(TaskDesc{&flaky, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(engine.stats().retries, 1u);
}

TEST(FaultTolerance, ThrownExceptionsAreCapturedAsFailures) {
  EngineConfig config = EngineConfig::cpus(1);
  config.fault_tolerance.max_retries = 0;
  Engine engine(std::move(config));
  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet thrower = make_codelet("thrower", [](const ExecContext&) {
    throw std::runtime_error("kernel exploded");
  });
  engine.submit(TaskDesc{&thrower, {{h, Access::kRead}}});
  const auto status = engine.wait_all();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().str().find("kernel exploded"), std::string::npos);
}

TEST(FaultTolerance, PerDeviceRetryBudgetOverridesEngineDefault) {
  EngineConfig config = EngineConfig::cpus(1);
  config.devices[0].max_retries = 0;  // PDL MAX_RETRIES=0: never retry here
  config.fault_tolerance.max_retries = 5;
  config.fault_plan = plan("fail:task=1,attempts=1");
  Engine engine(std::move(config));
  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  EXPECT_FALSE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().retries, 0u);
}

// --- blacklisting / re-routing -----------------------------------------------

TEST(FaultTolerance, BlacklistedDeviceQueueReroutesToSurvivor) {
  // Pure simulation queues everything before execution, so the dead
  // device's HEFT queue is non-empty when it gets blacklisted.
  EngineConfig config;
  for (int i = 0; i < 2; ++i) {
    DeviceSpec accel;
    accel.name = "gpu" + std::to_string(i);
    accel.kind = DeviceKind::kAccelerator;
    accel.sustained_gflops = 10.0;
    config.devices.push_back(accel);
  }
  config.mode = ExecutionMode::kPureSim;
  config.scheduler = SchedulerKind::kHeft;
  config.fault_plan = plan("kill:device=1,after=0");
  config.fault_tolerance.blacklist_after = 1;
  Engine engine(std::move(config));

  constexpr int kTasks = 8;
  std::vector<std::vector<double>> buffers(kTasks, std::vector<double>(256));
  Codelet c = make_codelet("work", [](const ExecContext&) {},
                           DeviceKind::kAccelerator);
  c.flops = [](const std::vector<BufferView>&) { return 1e6; };
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), buf.size());
    engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.devices_blacklisted, 1u);
  EXPECT_GE(stats.reroutes, 1u);  // drained from gpu1's queue at blacklist
  EXPECT_GE(stats.retries, 1u);   // the attempt that died retried elsewhere
  ASSERT_EQ(stats.devices.size(), 2u);
  EXPECT_TRUE(stats.devices[1].blacklisted);
  EXPECT_EQ(stats.devices[1].tasks_run, 0u);
  EXPECT_EQ(stats.devices[0].tasks_run, static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(count_events(stats, FaultEvent::Kind::kBlacklist), 1u);
  EXPECT_GE(count_events(stats, FaultEvent::Kind::kReroute), 1u);
}

TEST(FaultTolerance, AllDevicesDeadFailsInsteadOfHanging) {
  EngineConfig config = EngineConfig::cpus(1);
  config.fault_plan = plan("kill:device=0");
  config.fault_tolerance.blacklist_after = 1;
  config.fault_tolerance.max_retries = 10;
  Engine engine(std::move(config));
  std::vector<double> data(4, 0.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c = make_codelet("c", [](const ExecContext&) {});
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  engine.submit(TaskDesc{&c, {{h, Access::kRead}}});
  EXPECT_FALSE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 0u);
  EXPECT_EQ(stats.failed_tasks + stats.cancelled_tasks, 2u);
  EXPECT_EQ(stats.devices_blacklisted, 1u);
}

// --- acceptance: killed accelerator mid-DAG ----------------------------------

/// SPD matrix: M·Mᵀ + n·I with random M.
kernels::Matrix spd_matrix(std::size_t n, unsigned seed) {
  kernels::Matrix m(n, n);
  m.fill_random(seed);
  kernels::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = i == j ? static_cast<double>(n) : 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += m.at(i, k) * m.at(j, k);
      a.at(i, j) = sum;
    }
  }
  return a;
}

TEST(FaultTolerance, CholeskyCompletesWhenAcceleratorDiesMidDag) {
  const std::size_t n = 64;
  const int tiles = 4;
  kernels::Matrix a = spd_matrix(n, 21);
  kernels::Matrix original = a;

  EngineConfig config;
  DeviceSpec cpu;
  cpu.name = "cpu";
  // Modeled-slow CPU: with 16x16 tiles the transfer latency would otherwise
  // make HEFT keep every kernel on the host and gpu1 would never be
  // exercised. Only the cost model sees this rate; execution is real.
  cpu.sustained_gflops = 0.05;
  config.devices.push_back(cpu);
  for (int i = 0; i < 2; ++i) {
    DeviceSpec accel;
    accel.name = "gpu" + std::to_string(i);
    accel.kind = DeviceKind::kAccelerator;
    accel.sustained_gflops = 50.0;
    config.devices.push_back(accel);
  }
  // Device 2 (gpu1) dies after completing 3 tasks; one consecutive failure
  // is enough to blacklist it, and its work re-routes to cpu + gpu0.
  // Deterministic mode: kernels execute for real (the residual check below
  // needs genuine numerics) while scheduling replays identically, so the
  // exact per-device task counts are stable across runs.
  config.mode = ExecutionMode::kDeterministic;
  config.fault_plan = plan("kill:device=2,after=3");
  config.fault_tolerance.blacklist_after = 1;
  Engine engine(std::move(config));

  auto result = solvers::tiled_cholesky(engine, a.data(), n, tiles);
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_LT(kernels::cholesky_residual(n, a.data(), n, original.data(), n), 1e-8);

  const EngineStats stats = engine.stats();
  ASSERT_EQ(stats.devices.size(), 3u);
  EXPECT_TRUE(stats.devices[2].blacklisted);
  EXPECT_EQ(stats.devices[2].tasks_run, 3u);
  EXPECT_GE(stats.devices[2].failures, 1u);
  EXPECT_EQ(stats.devices_blacklisted, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.failed_tasks, 0u);
  EXPECT_EQ(stats.cancelled_tasks, 0u);
  // Every submitted task completed, all on the survivors.
  const auto submitted =
      static_cast<std::uint64_t>(result.value().tasks_submitted);
  EXPECT_EQ(stats.tasks_completed, submitted);
  EXPECT_EQ(stats.devices[0].tasks_run + stats.devices[1].tasks_run +
                stats.devices[2].tasks_run,
            submitted);
}

}  // namespace
}  // namespace starvm
