#include <gtest/gtest.h>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/selection.hpp"
#include "discovery/presets.hpp"

namespace cascabel {
namespace {

using pdl::discovery::cell_be_platform;
using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

TaskRepository builtin_repo() {
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  return repo;
}

std::vector<std::string> selected_names(const SelectionResult& result,
                                        const std::string& interface_name) {
  std::vector<std::string> names;
  if (const auto* candidates = result.candidates(interface_name)) {
    for (const auto& c : *candidates) names.push_back(c.variant->pragma.variant_name);
  }
  return names;
}

TEST(Preselect, SingleKeepsOnlyFallback) {
  TaskRepository repo = builtin_repo();
  pdl::Platform target = paper_platform_single();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  EXPECT_FALSE(pdl::has_errors(diags));
  // Both fallback ("x86") variants survive on a single-core target.
  EXPECT_EQ(selected_names(result, "Idgemm"),
            std::vector<std::string>({"dgemm_seq", "dgemm_tiled"}));
}

TEST(Preselect, StarpuCpuAddsSmpVariant) {
  TaskRepository repo = builtin_repo();
  pdl::Platform target = paper_platform_starpu_cpu();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  const auto names = selected_names(result, "Idgemm");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "dgemm_seq");  // fall-backs ordered first
  EXPECT_EQ(names[1], "dgemm_tiled");
  EXPECT_EQ(names[2], "dgemm_smp");
}

TEST(Preselect, GpuPlatformKeepsCudaVariant) {
  TaskRepository repo = builtin_repo();
  pdl::Platform target = paper_platform_starpu_2gpu();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  const auto names = selected_names(result, "Idgemm");
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "dgemm_seq");

  // The CUDA variant's static mapping binds the two gpu Workers.
  const auto* candidates = result.candidates("Idgemm");
  const SelectedVariant* cublas = nullptr;
  for (const auto& c : *candidates) {
    if (c.variant->pragma.variant_name == "dgemm_cublas") cublas = &c;
  }
  ASSERT_NE(cublas, nullptr);
  EXPECT_EQ(cublas->matched_platform, "cuda");
  EXPECT_EQ(cublas->device_kind, starvm::DeviceKind::kAccelerator);
  EXPECT_FALSE(cublas->is_fallback);
  int gpu_pus = 0;
  for (const auto* pu : cublas->mapped_pus) {
    if (pu->descriptor().get("ARCHITECTURE") == "gpu") ++gpu_pus;
  }
  EXPECT_EQ(gpu_pus, 2);
}

TEST(Preselect, PrunedVariantsAreReportedAsInfo) {
  TaskRepository repo = builtin_repo();
  pdl::Platform target = paper_platform_single();
  pdl::Diagnostics diags;
  preselect(repo, target, diags);
  // dgemm_smp, dgemm_cublas, vecadd_smp, vecadd_ocl pruned.
  EXPECT_GE(pdl::count_severity(diags, pdl::Severity::kInfo), 4u);
}

TEST(Preselect, MissingFallbackIsError) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant gpu_only;
  gpu_only.pragma.task_interface = "Ionly";
  gpu_only.pragma.variant_name = "only_gpu";
  gpu_only.pragma.target_platforms = {"cuda"};
  repo.add_variant(gpu_only);

  pdl::Platform target = paper_platform_starpu_2gpu();
  pdl::Diagnostics diags;
  preselect(repo, target, diags);
  EXPECT_TRUE(pdl::has_errors(diags));
}

TEST(Preselect, InterfaceWithNoMatchingVariantIsError) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant cell_only;
  cell_only.pragma.task_interface = "Icell";
  cell_only.pragma.variant_name = "spe_impl";
  cell_only.pragma.target_platforms = {"cell"};
  repo.add_variant(cell_only);

  pdl::Platform target = paper_platform_starpu_cpu();  // no SPEs
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  EXPECT_TRUE(pdl::has_errors(diags));
  EXPECT_EQ(result.candidates("Icell"), nullptr);
}

TEST(Preselect, UnknownTargetPlatformWarns) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant v;
  v.pragma.task_interface = "I";
  v.pragma.variant_name = "v";
  v.pragma.target_platforms = {"quantum", "x86"};
  repo.add_variant(v);

  pdl::Platform target = paper_platform_single();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  EXPECT_GE(pdl::count_severity(diags, pdl::Severity::kWarning), 1u);
  // Still selected through the x86 entry.
  EXPECT_EQ(selected_names(result, "I").size(), 1u);
}

TEST(Preselect, CellVariantsSelectOnCellPlatform) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant fallback;
  fallback.pragma.task_interface = "I";
  fallback.pragma.variant_name = "seq";
  fallback.pragma.target_platforms = {"x86"};
  repo.add_variant(fallback);
  TaskVariant spe;
  spe.pragma.task_interface = "I";
  spe.pragma.variant_name = "spe";
  spe.pragma.target_platforms = {"cell"};
  repo.add_variant(spe);

  pdl::Platform target = cell_be_platform();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  // The cell platform's master is ppe (not x86): "x86" -> pattern "M" still
  // matches any master, so the fall-back survives, plus the spe variant.
  EXPECT_EQ(selected_names(result, "I").size(), 2u);
}

TEST(ResolveExecutionGroup, FindsDeclaredGroups) {
  pdl::Platform target = paper_platform_starpu_2gpu();
  pdl::Diagnostics diags;
  EXPECT_EQ(resolve_execution_group(target, "gpu", diags).size(), 2u);
  EXPECT_EQ(resolve_execution_group(target, "cpu", diags).size(), 1u);
  EXPECT_TRUE(diags.empty());
}

TEST(ResolveExecutionGroup, UnknownGroupFallsBackToAllPusWithWarning) {
  pdl::Platform target = paper_platform_starpu_cpu();
  pdl::Diagnostics diags;
  const auto pus = resolve_execution_group(target, "nonexistent", diags);
  EXPECT_EQ(pus.size(), 2u);  // master + cpu_cores worker node
  EXPECT_EQ(pdl::count_severity(diags, pdl::Severity::kWarning), 1u);
}

TEST(ResolveExecutionGroup, EmptyGroupMeansEverything) {
  pdl::Platform target = paper_platform_starpu_cpu();
  pdl::Diagnostics diags;
  EXPECT_EQ(resolve_execution_group(target, "", diags).size(), 2u);
  EXPECT_TRUE(diags.empty());
}

TEST(Preselect, InlinePatternRequirement) {
  // Paper §II: expert code states its own architectural requirements.
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant fallback;
  fallback.pragma.task_interface = "I";
  fallback.pragma.variant_name = "seq";
  fallback.pragma.target_platforms = {"x86"};
  repo.add_variant(fallback);
  TaskVariant tuned;
  tuned.pragma.task_interface = "I";
  tuned.pragma.variant_name = "dual_gpu_tuned";
  tuned.pragma.target_platforms = {"pattern(M[W(ARCHITECTURE=gpu)x2])"};
  repo.add_variant(tuned);

  // Satisfied on the 2-GPU testbed...
  {
    pdl::Platform target = paper_platform_starpu_2gpu();
    pdl::Diagnostics diags;
    SelectionResult result = preselect(repo, target, diags);
    EXPECT_FALSE(pdl::has_errors(diags));
    const auto names = selected_names(result, "I");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[1], "dual_gpu_tuned");
    // The gpu pattern classifies the variant as accelerator code.
    EXPECT_EQ((*result.candidates("I"))[1].device_kind,
              starvm::DeviceKind::kAccelerator);
    EXPECT_EQ((*result.candidates("I"))[1].mapped_pus.size(), 2u);
  }
  // ...pruned on the CPU-only platform.
  {
    pdl::Platform target = paper_platform_starpu_cpu();
    pdl::Diagnostics diags;
    SelectionResult result = preselect(repo, target, diags);
    EXPECT_EQ(selected_names(result, "I"),
              std::vector<std::string>({"seq"}));
  }
}

TEST(Preselect, InlinePatternWithCommasParses) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant v;
  v.pragma.task_interface = "I";
  v.pragma.variant_name = "seq";
  v.pragma.target_platforms = {"x86"};
  repo.add_variant(v);
  TaskVariant combo;
  combo.pragma.task_interface = "I";
  combo.pragma.variant_name = "combo";
  combo.pragma.target_platforms = {
      "pattern(M[W(ARCHITECTURE=x86_core)x8,W(ARCHITECTURE=gpu)x2])"};
  repo.add_variant(combo);

  pdl::Platform target = paper_platform_starpu_2gpu();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  EXPECT_EQ(selected_names(result, "I").size(), 2u);
}

TEST(Preselect, SpecificityRanksTighterPatternsHigher) {
  TaskRepository repo = TaskRepository::with_defaults();
  TaskVariant generic;
  generic.pragma.task_interface = "I";
  generic.pragma.variant_name = "seq";
  generic.pragma.target_platforms = {"x86"};
  repo.add_variant(generic);
  TaskVariant smp;
  smp.pragma.task_interface = "I";
  smp.pragma.variant_name = "smp_v";
  smp.pragma.target_platforms = {"smp"};
  repo.add_variant(smp);
  TaskVariant tuned;
  tuned.pragma.task_interface = "I";
  tuned.pragma.variant_name = "tuned8";
  tuned.pragma.target_platforms = {
      "pattern(M(ARCHITECTURE=x86)[W(ARCHITECTURE=x86_core)x8])"};
  repo.add_variant(tuned);

  pdl::Platform target = paper_platform_starpu_cpu();
  pdl::Diagnostics diags;
  SelectionResult result = preselect(repo, target, diags);
  const auto* candidates = result.candidates("I");
  ASSERT_NE(candidates, nullptr);
  int seq_spec = -1, smp_spec = -1, tuned_spec = -1;
  for (const auto& c : *candidates) {
    if (c.variant->pragma.variant_name == "seq") seq_spec = c.specificity;
    if (c.variant->pragma.variant_name == "smp_v") smp_spec = c.specificity;
    if (c.variant->pragma.variant_name == "tuned8") tuned_spec = c.specificity;
  }
  // "M" < "M[W(ARCHITECTURE=x86_core)]" < "M(ARCH..)[W(ARCH..)x8]".
  EXPECT_GT(smp_spec, seq_spec);
  EXPECT_GT(tuned_spec, smp_spec);
}

TEST(DeviceKindForTarget, Mapping) {
  EXPECT_EQ(device_kind_for_target("x86"), starvm::DeviceKind::kCpu);
  EXPECT_EQ(device_kind_for_target("smp"), starvm::DeviceKind::kCpu);
  EXPECT_EQ(device_kind_for_target("cuda"), starvm::DeviceKind::kAccelerator);
  EXPECT_EQ(device_kind_for_target("OpenCL"), starvm::DeviceKind::kAccelerator);
  EXPECT_EQ(device_kind_for_target("cell"), starvm::DeviceKind::kAccelerator);
}

}  // namespace
}  // namespace cascabel
