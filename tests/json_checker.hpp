// Minimal JSON parser for tests: validates a document and collects every
// decoded string value, so exporter tests can assert that labels with
// quotes, backslashes or control characters survive the round trip.
// Not a production parser — no streaming, no duplicate-key policy.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace testjson {

struct ParseResult {
  bool ok = false;
  std::string error;                 ///< first problem found, for messages
  std::vector<std::string> strings;  ///< every decoded string value & key
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(result)) {
      result.ok = false;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail(result, "trailing characters");
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(ParseResult& r, const std::string& what) {
    if (r.error.empty()) {
      r.error = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(ParseResult& r) {
    if (pos_ >= text_.size()) return fail(r, "unexpected end");
    switch (text_[pos_]) {
      case '{': return parse_object(r);
      case '[': return parse_array(r);
      case '"': return parse_string(r);
      case 't': return literal("true") || fail(r, "bad literal");
      case 'f': return literal("false") || fail(r, "bad literal");
      case 'n': return literal("null") || fail(r, "bad literal");
      default: return parse_number(r);
    }
  }

  bool parse_object(ParseResult& r) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail(r, "key expected");
      if (!parse_string(r)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail(r, "':' expected");
      ++pos_;
      skip_ws();
      if (!parse_value(r)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(r, "',' or '}' expected");
    }
  }

  bool parse_array(ParseResult& r) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value(r)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(r, "',' or ']' expected");
    }
  }

  bool parse_string(ParseResult& r) {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        r.strings.push_back(std::move(out));
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail(r, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail(r, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail(r, "short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(r, "bad \\u escape");
          }
          // The exporters only emit \u00XX (control characters); decoding
          // the Latin-1 range is enough for round-trip assertions.
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else {
            out += '?';
          }
          break;
        }
        default: return fail(r, "unknown escape");
      }
    }
    return fail(r, "unterminated string");
  }

  bool parse_number(ParseResult& r) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return fail(r, "value expected");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline ParseResult parse(std::string_view text) { return Parser(text).run(); }

inline bool contains_string(const ParseResult& r, std::string_view s) {
  for (const auto& candidate : r.strings) {
    if (candidate == s) return true;
  }
  return false;
}

}  // namespace testjson
