#include <gtest/gtest.h>

#include "annot/source_scanner.hpp"

namespace cascabel {
namespace {

TEST(FindPragmas, FindsCascabelPragmasOnly) {
  const char* kSource = R"(
#include <x.h>
#pragma once
#pragma cascabel task : x86 : I : v : (A: read)
void f() {}
#pragma omp parallel
#pragma cascabel execute I : g (A:BLOCK:4)
f();
)";
  const auto pragmas = find_cascabel_pragmas(kSource);
  ASSERT_EQ(pragmas.size(), 2u);
  EXPECT_EQ(pragmas[0].text.substr(0, 13), "cascabel task");
  EXPECT_EQ(pragmas[1].text.substr(0, 16), "cascabel execute");
  EXPECT_EQ(pragmas[0].range.line, 4);
  EXPECT_EQ(pragmas[1].range.line, 7);
}

TEST(FindPragmas, FoldsBackslashContinuations) {
  const char* kSource =
      "#pragma cascabel task : x86 \\\n"
      " : Iface \\\n"
      " : name : (A: read)\n";
  const auto pragmas = find_cascabel_pragmas(kSource);
  ASSERT_EQ(pragmas.size(), 1u);
  EXPECT_EQ(pragmas[0].text.find('\n'), std::string::npos);
  EXPECT_NE(pragmas[0].text.find("Iface"), std::string::npos);
}

TEST(FindPragmas, IgnoresPragmasInCommentsAndStrings) {
  const char* kSource = R"(
// #pragma cascabel task : fake
/* #pragma cascabel execute fake */
const char* s = "#pragma cascabel task : also fake";
#pragma cascabel execute Real : g (A:BLOCK:1)
x();
)";
  const auto pragmas = find_cascabel_pragmas(kSource);
  ASSERT_EQ(pragmas.size(), 1u);
  EXPECT_NE(pragmas[0].text.find("Real"), std::string::npos);
}

TEST(NextFunction, ParsesSimpleDefinition) {
  const char* kSource = "void vectoradd(double *A, double *B) { A[0] += B[0]; }";
  const auto fn = next_function_definition(kSource, 0);
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->name, "vectoradd");
  EXPECT_EQ(fn->return_type, "void");
  ASSERT_EQ(fn->param_names.size(), 2u);
  EXPECT_EQ(fn->param_names[0], "A");
  EXPECT_EQ(fn->param_names[1], "B");
  EXPECT_EQ(fn->param_types[0], "double *");
  EXPECT_EQ(fn->definition.begin, 0u);
  EXPECT_EQ(fn->definition.end, std::string(kSource).size());
}

TEST(NextFunction, SkipsDeclarationsAndCalls) {
  const char* kSource = R"(
void decl(int x);
int other = compute(1, 2);
static double real_one(const double* p, int n) { return p[n]; }
)";
  const auto fn = next_function_definition(kSource, 0);
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->name, "real_one");
  EXPECT_EQ(fn->return_type, "static double");
  ASSERT_EQ(fn->param_names.size(), 2u);
  EXPECT_EQ(fn->param_names[0], "p");
  EXPECT_EQ(fn->param_types[0], "const double*");
  EXPECT_EQ(fn->param_names[1], "n");
  EXPECT_EQ(fn->param_types[1], "int");
}

TEST(NextFunction, HandlesNestedBracesAndStrings) {
  const char* kSource = R"(
int f(int a) {
  if (a) { return '}'; }
  const char* s = "}}}";
  return 0;
}
int g() { return 1; }
)";
  const auto fn = next_function_definition(kSource, 0);
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->name, "f");
  // The body must end at f's closing brace, not g's.
  const std::string body(std::string(kSource).substr(
      fn->body.begin, fn->body.end - fn->body.begin));
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_NE(body.find("\"}}}\""), std::string::npos);
  EXPECT_EQ(body.find("return 1"), std::string::npos);
}

TEST(NextFunction, VoidParameterListIsEmpty) {
  const auto fn = next_function_definition("int main(void) { return 0; }", 0);
  ASSERT_TRUE(fn.has_value());
  EXPECT_TRUE(fn->param_names.empty());
}

TEST(NextFunction, NoDefinitionReturnsNullopt) {
  EXPECT_FALSE(next_function_definition("int x = 3; void f(int);", 0).has_value());
  EXPECT_FALSE(next_function_definition("", 0).has_value());
}

TEST(NextCall, ParsesPlainCall) {
  const auto call = next_call_statement("  vectoradd( A, B );", 0);
  ASSERT_TRUE(call.has_value());
  EXPECT_EQ(call->callee, "vectoradd");
  ASSERT_EQ(call->args.size(), 2u);
  EXPECT_EQ(call->args[0], "A");
  EXPECT_EQ(call->args[1], "B");
}

TEST(NextCall, ParsesQualifiedCalleeAndExpressions) {
  const auto call = next_call_statement("ns::obj.run(x + 1, f(y), \"s,t\");", 0);
  ASSERT_TRUE(call.has_value());
  EXPECT_EQ(call->callee, "ns::obj.run");
  ASSERT_EQ(call->args.size(), 3u);
  EXPECT_EQ(call->args[0], "x + 1");
  EXPECT_EQ(call->args[1], "f(y)");
  EXPECT_EQ(call->args[2], "\"s,t\"");  // comma inside string not a separator
}

TEST(NextCall, RejectsNonCalls) {
  EXPECT_FALSE(next_call_statement("int x = 3;", 0).has_value());
  EXPECT_FALSE(next_call_statement("f(x)", 0).has_value());  // no semicolon
  EXPECT_FALSE(next_call_statement("", 0).has_value());
}

TEST(FindMatching, BalancedAndUnbalanced) {
  const std::string s = "(a(b)c)";
  EXPECT_EQ(find_matching(s, 0, '(', ')'), s.size());
  EXPECT_EQ(find_matching("((", 0, '(', ')'), std::string::npos);
  EXPECT_EQ(find_matching("x", 0, '(', ')'), std::string::npos);
}

TEST(LineOf, CountsNewlines) {
  EXPECT_EQ(line_of("a\nb\nc", 0), 1);
  EXPECT_EQ(line_of("a\nb\nc", 2), 2);
  EXPECT_EQ(line_of("a\nb\nc", 4), 3);
}

}  // namespace
}  // namespace cascabel
