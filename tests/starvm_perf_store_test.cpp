// Persisted perf store: format round-trips, rejection taxonomy, engine
// preload/save wiring, declared-rate seeding, and the determinism
// guarantee (a loaded store changes estimates, never ordering).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "starvm/engine.hpp"
#include "starvm/perf_model.hpp"
#include "starvm/perf_store.hpp"
#include "starvm/trace_export.hpp"

namespace starvm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

perf_store::Store sample_store(std::uint64_t hash) {
  perf_store::Store store;
  store.descriptor_hash = hash;
  store.entries = {
      {"dgemm_tiled", 1, 2.5e-3, 7, 41.5},
      {"dgemm_tiled", 0, 1.5e-3, 5, 12.25},
      {"vecadd_seq", 0, 3.0e-6, 12, 0.0},
  };
  return store;
}

TEST(PerfStore, DescriptorHashIsStableAndSensitive) {
  const EngineConfig a = EngineConfig::cpus(2, 5.0);
  const EngineConfig b = EngineConfig::cpus(2, 5.0);
  EXPECT_EQ(perf_store::descriptor_hash(a.devices),
            perf_store::descriptor_hash(b.devices));
  // Any cost-model-relevant edit must produce a cold start.
  const EngineConfig faster = EngineConfig::cpus(2, 6.0);
  EXPECT_NE(perf_store::descriptor_hash(a.devices),
            perf_store::descriptor_hash(faster.devices));
  const EngineConfig wider = EngineConfig::cpus(3, 5.0);
  EXPECT_NE(perf_store::descriptor_hash(a.devices),
            perf_store::descriptor_hash(wider.devices));
}

TEST(PerfStore, SaveLoadRoundTripIsByteStable) {
  const std::string path = temp_path("roundtrip.perfstore");
  const perf_store::Store store = sample_store(0x1234abcd5678ef01ULL);
  const std::string rendered = perf_store::render_text(store);
  ASSERT_TRUE(perf_store::save(store, path));

  const perf_store::LoadResult loaded = perf_store::load(path);
  ASSERT_EQ(loaded.status, perf_store::LoadStatus::kLoaded) << loaded.detail;
  EXPECT_EQ(loaded.store.descriptor_hash, store.descriptor_hash);
  ASSERT_EQ(loaded.store.entries.size(), store.entries.size());

  // Render(load(save(s))) == render(s): the text form is canonical.
  EXPECT_EQ(perf_store::render_text(loaded.store), rendered);

  // And the canonical order is (codelet, device), independent of input
  // order.
  EXPECT_EQ(loaded.store.entries[0].codelet, "dgemm_tiled");
  EXPECT_EQ(loaded.store.entries[0].device, 0);
  EXPECT_EQ(loaded.store.entries[1].device, 1);
  EXPECT_EQ(loaded.store.entries[2].codelet, "vecadd_seq");
  EXPECT_DOUBLE_EQ(loaded.store.entries[1].ema_seconds, 2.5e-3);
  EXPECT_EQ(loaded.store.entries[1].count, 7u);
  EXPECT_DOUBLE_EQ(loaded.store.entries[1].ema_gflops, 41.5);

  // save() leaves no temp file behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(PerfStore, MissingFileIsACleanColdStart) {
  const perf_store::LoadResult loaded =
      perf_store::load(temp_path("does_not_exist.perfstore"));
  EXPECT_EQ(loaded.status, perf_store::LoadStatus::kMissing);
}

TEST(PerfStore, WrongVersionIsRejectedAsBadVersion) {
  const std::string path = temp_path("badversion.perfstore");
  write_file(path, "# starvm perf-store v2\nplatform 0000000000000001\n");
  EXPECT_EQ(perf_store::load(path).status, perf_store::LoadStatus::kBadVersion);
  std::remove(path.c_str());
}

TEST(PerfStore, CorruptFilesAreRejected) {
  const std::string path = temp_path("corrupt.perfstore");
  const char* cases[] = {
      "",                                  // empty
      "not a perf store\n",                // foreign content
      "# starvm perf-store v1\n",          // truncated: no platform line
      "# starvm perf-store v1\nplatform xyz\n",  // malformed hash
      "# starvm perf-store v1\nplatform 0000000000000001\nrate a 0 0.001\n",
      "# starvm perf-store v1\nplatform 0000000000000001\n"
      "rate a 99 0.001 5 1.0\n",           // device out of range
      "# starvm perf-store v1\nplatform 0000000000000001\n"
      "rate a 0 0.001 0 1.0\n",            // count == 0 is not a sample
      "# starvm perf-store v1\nplatform 0000000000000001\n"
      "bogus a 0 0.001 5 1.0\n",           // unknown record kind
  };
  for (const char* text : cases) {
    write_file(path, text);
    EXPECT_EQ(perf_store::load(path).status, perf_store::LoadStatus::kCorrupt)
        << "accepted: " << text;
  }
  std::remove(path.c_str());
}

TEST(PerfStore, FromModelSnapshotAndPreloadAgree) {
  PerfModel model;
  PerfModel::Row& row = model.row("k1");
  PerfModel::observe_in(row, 0, 0.010, 2e7);
  PerfModel::observe_in(row, 0, 0.020, 2e7);
  PerfModel::observe_in(row, 1, 0.005, 0.0);  // no flops -> no rate cell

  const perf_store::Store store = perf_store::from_model(model, 42);
  EXPECT_EQ(store.descriptor_hash, 42u);
  ASSERT_EQ(store.entries.size(), 2u);

  PerfModel reloaded;
  perf_store::preload(store, reloaded);
  for (const perf_store::Entry& e : store.entries) {
    const auto estimate = reloaded.history_estimate(e.codelet, e.device);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_DOUBLE_EQ(*estimate, e.ema_seconds);
  }
}

TEST(PerfStore, EnvVarDisabledForms) {
  ::setenv("PDL_PERF_STORE", "", 1);
  EXPECT_EQ(perf_store::env_store_path(), "");
  ::setenv("PDL_PERF_STORE", "0", 1);
  EXPECT_EQ(perf_store::env_store_path(), "");
  ::setenv("PDL_PERF_STORE", "/tmp/x.perfstore", 1);
  EXPECT_EQ(perf_store::env_store_path(), "/tmp/x.perfstore");
  ::unsetenv("PDL_PERF_STORE");
  EXPECT_EQ(perf_store::env_store_path(), "");
}

// --- Engine wiring -----------------------------------------------------------

Codelet flops_codelet(std::string name, double flops) {
  Codelet c;
  c.name = std::move(name);
  c.impls.push_back(Implementation{DeviceKind::kCpu, [](const ExecContext&) {}});
  c.flops = [flops](const std::vector<BufferView>&) { return flops; };
  return c;
}

TEST(PerfStoreEngine, PreloadWarmsEstimatesFromTheFirstTask) {
  const std::string path = temp_path("engine_warm.perfstore");
  EngineConfig config = EngineConfig::cpus(2);
  perf_store::Store store;
  store.descriptor_hash = perf_store::descriptor_hash(config.devices);
  store.entries = {{"warm", 0, 0.125, 9, 8.0}};
  ASSERT_TRUE(perf_store::save(store, path));

  config.perf_store_path = path;
  Engine engine(std::move(config));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.perf_store_entries, 1u);
  EXPECT_EQ(stats.perf_store_rejected, 0u);
  const auto estimate = engine.perf_model().history_estimate("warm", 0);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(*estimate, 0.125);
  std::remove(path.c_str());
}

TEST(PerfStoreEngine, HashMismatchIsRejectedAndCounted) {
  const std::string path = temp_path("engine_mismatch.perfstore");
  EngineConfig config = EngineConfig::cpus(2);
  perf_store::Store store;
  store.descriptor_hash =
      perf_store::descriptor_hash(config.devices) ^ 0xdeadbeefULL;
  store.entries = {{"stale", 0, 0.125, 9, 8.0}};
  ASSERT_TRUE(perf_store::save(store, path));

  config.perf_store_path = path;
  Engine engine(std::move(config));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.perf_store_entries, 0u);
  EXPECT_EQ(stats.perf_store_rejected, 1u);
  EXPECT_FALSE(engine.perf_model().history_estimate("stale", 0).has_value());
  std::remove(path.c_str());
}

TEST(PerfStoreEngine, CorruptStoreIsRejectedAndCounted) {
  const std::string path = temp_path("engine_corrupt.perfstore");
  write_file(path, "definitely not a perf store\n");
  EngineConfig config = EngineConfig::cpus(1);
  config.perf_store_path = path;
  Engine engine(std::move(config));
  EXPECT_EQ(engine.stats().perf_store_rejected, 1u);
  std::remove(path.c_str());
}

TEST(PerfStoreEngine, SavesCalibratedCellsOnShutdown) {
  const std::string path = temp_path("engine_save.perfstore");
  std::remove(path.c_str());
  std::uint64_t hash = 0;
  {
    EngineConfig config = EngineConfig::cpus(1);
    config.perf_store_path = path;
    hash = perf_store::descriptor_hash(config.devices);
    Engine engine(std::move(config));
    Codelet c = flops_codelet("persisted_kernel", 1e6);
    std::vector<double> data(16, 1.0);
    DataHandle* h = engine.register_vector(data.data(), data.size(), "v");
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}, "t"});
    ASSERT_TRUE(engine.wait_all().ok());
  }  // destructor persists the model

  const perf_store::LoadResult loaded = perf_store::load(path);
  ASSERT_EQ(loaded.status, perf_store::LoadStatus::kLoaded) << loaded.detail;
  EXPECT_EQ(loaded.store.descriptor_hash, hash);
  bool found = false;
  for (const perf_store::Entry& e : loaded.store.entries) {
    if (e.codelet == "persisted_kernel") {
      found = true;
      EXPECT_GE(e.count, 1u);
      EXPECT_GT(e.ema_seconds, 0.0);
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(PerfStoreEngine, DeclaredRatesSeedEveryWiredCodelet) {
  Engine engine(EngineConfig::cpus(2));
  Codelet c = flops_codelet("seeded_kernel", 1e6);
  std::vector<double> data(16, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size(), "v");
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}, "t"});
  ASSERT_TRUE(engine.wait_all().ok());
  // One seed per (codelet, device): 1 codelet x 2 devices.
  EXPECT_EQ(engine.stats().perf_model_seeds, 2u);
}

// --- Seeding semantics -------------------------------------------------------

TEST(PerfModelSeed, SeededEstimateEqualsAnalyticWithSeedRate) {
  PerfModel model;
  PerfModel::Row& row = model.row("k");
  ASSERT_TRUE(PerfModel::seed_in(row, 0, 10.0));
  // Seeded with the device's own rate, the estimate is byte-identical to
  // the cold analytic fallback: warm and cold share one code path.
  EXPECT_DOUBLE_EQ(PerfModel::estimate_in(row, 0, 2e9, 10.0), 0.2);
  // Seeded with a *different* rate, the seed wins over the device rate.
  ASSERT_TRUE(PerfModel::seed_in(row, 1, 20.0));
  EXPECT_DOUBLE_EQ(PerfModel::estimate_in(row, 1, 2e9, 10.0), 0.1);
  // Re-seeding an occupied cell is refused.
  EXPECT_FALSE(PerfModel::seed_in(row, 0, 99.0));
}

TEST(PerfModelSeed, FirstObservationBlendsWithTheDeclaredPrior) {
  PerfModel model;
  PerfModel::Row& row = model.row("k");
  ASSERT_TRUE(PerfModel::seed_in(row, 0, 10.0));
  // Prior implied by the seed for a 2 GFLOP task: 0.2 s. First sample of
  // 0.1 s blends: 0.25 * 0.1 + 0.75 * 0.2 = 0.175.
  PerfModel::observe_in(row, 0, 0.1, 2e9);
  const auto estimate = model.history_estimate("k", 0);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 0.175, 1e-12);

  // Without a seed the first sample slams the cell (old behavior).
  PerfModel::Row& cold = model.row("k_cold");
  PerfModel::observe_in(cold, 0, 0.1, 2e9);
  EXPECT_DOUBLE_EQ(*model.history_estimate("k_cold", 0), 0.1);
}

// --- Determinism -------------------------------------------------------------

TEST(PerfStoreEngine, DeterministicReplayIsByteStableWithAStoreLoaded) {
  const std::string path = temp_path("engine_det.perfstore");
  EngineConfig proto = EngineConfig::cpus(3);
  perf_store::Store store;
  store.descriptor_hash = perf_store::descriptor_hash(proto.devices);
  // Uneven learned rates so the store actually changes HEFT's placements
  // relative to a cold start.
  store.entries = {{"det_kernel", 0, 0.010, 5, 1.0},
                   {"det_kernel", 1, 0.001, 5, 10.0},
                   {"det_kernel", 2, 0.004, 5, 2.5}};

  const auto run_once = [&]() {
    // Each run starts from the identical pristine store (the engine's own
    // shutdown save would otherwise feed run 1's observations into run 2).
    EXPECT_TRUE(perf_store::save(store, path));
    EngineConfig config = EngineConfig::cpus(3);
    config.mode = ExecutionMode::kDeterministic;
    config.perf_store_path = path;
    Engine engine(std::move(config));
    Codelet c = flops_codelet("det_kernel", 1e7);
    std::vector<std::vector<double>> data(6, std::vector<double>(8, 1.0));
    std::vector<TaskDesc> batch;
    for (std::size_t i = 0; i < data.size(); ++i) {
      DataHandle* h = engine.register_vector(data[i].data(), data[i].size(),
                                             "v" + std::to_string(i));
      batch.push_back(TaskDesc{&c, {{h, Access::kReadWrite}},
                               "t" + std::to_string(i)});
    }
    engine.submit_batch(std::move(batch));
    EXPECT_TRUE(engine.wait_all().ok());
    return to_chrome_trace(engine.stats());
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);  // byte-stable: same store -> same schedule
  EXPECT_FALSE(first.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace starvm
