#include <gtest/gtest.h>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace pdl::xml {
namespace {

/// Structural equality of two elements (names, attributes, text, children).
bool structurally_equal(const Element& a, const Element& b) {
  if (a.name() != b.name()) return false;
  if (a.attributes().size() != b.attributes().size()) return false;
  for (const auto& attr : a.attributes()) {
    if (b.attribute(attr.name) != attr.value) return false;
  }
  const auto ac = a.child_elements();
  const auto bc = b.child_elements();
  if (ac.size() != bc.size()) return false;
  for (std::size_t i = 0; i < ac.size(); ++i) {
    if (!structurally_equal(*ac[i], *bc[i])) return false;
  }
  return a.text_content() == b.text_content();
}

TEST(XmlWriter, WritesEmptyElementSelfClosing) {
  Document doc;
  doc.create_root("root");
  WriteOptions options;
  options.declaration = false;
  options.pretty = false;
  EXPECT_EQ(write(doc, options), "<root/>");
}

TEST(XmlWriter, WritesDeclarationByDefault) {
  Document doc;
  doc.create_root("r");
  const std::string text = write(doc);
  EXPECT_NE(text.find("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"), std::string::npos);
}

TEST(XmlWriter, EscapesTextAndAttributes) {
  Document doc;
  Element* root = doc.create_root("r");
  root->set_attribute("a", "x\"<>&y");
  root->append_text("1 < 2 & 3 > 2");
  WriteOptions options;
  options.declaration = false;
  options.pretty = false;
  const std::string text = write(doc, options);
  EXPECT_NE(text.find("a=\"x&quot;&lt;&gt;&amp;y\""), std::string::npos);
  EXPECT_NE(text.find("1 &lt; 2 &amp; 3 &gt; 2"), std::string::npos);
}

TEST(XmlWriter, PrettyPrintsNestedElements) {
  Document doc;
  Element* root = doc.create_root("a");
  root->append_element("b")->append_element("c");
  WriteOptions options;
  options.declaration = false;
  const std::string text = write(doc, options);
  EXPECT_NE(text.find("<a>\n  <b>\n    <c/>\n  </b>\n</a>"), std::string::npos);
}

TEST(XmlWriter, LeafTextStaysInline) {
  Document doc;
  Element* root = doc.create_root("a");
  root->append_element("name")->append_text("value");
  WriteOptions options;
  options.declaration = false;
  const std::string text = write(doc, options);
  EXPECT_NE(text.find("<name>value</name>"), std::string::npos);
}

TEST(XmlWriter, WritesCData) {
  Document doc;
  Element* root = doc.create_root("a");
  auto node = std::make_unique<Node>(NodeKind::kCData);
  node->set_text("<raw>&");
  root->append(std::move(node));
  const std::string text = write(doc, {.pretty = false, .declaration = false});
  EXPECT_EQ(text, "<a><![CDATA[<raw>&]]></a>");
}

TEST(XmlWriter, RoundTripPreservesStructure) {
  const char* kInput = R"(<platform name="p&amp;q" version="1.0">
    <Master id="0" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCH</name><value>x86</value></Property>
      </PUDescriptor>
      <Worker id="1"><PUDescriptor/></Worker>
    </Master>
  </platform>)";
  auto first = parse(kInput);
  ASSERT_TRUE(first.ok()) << first.error().str();
  const std::string serialized = write(first.value());
  auto second = parse(serialized);
  ASSERT_TRUE(second.ok()) << second.error().str();
  EXPECT_TRUE(structurally_equal(*first.value().root(), *second.value().root()));
}

TEST(XmlWriter, IndentWidthIsConfigurable) {
  Document doc;
  doc.create_root("a")->append_element("b");
  WriteOptions options;
  options.declaration = false;
  options.indent_width = 4;
  EXPECT_EQ(write(doc, options), "<a>\n    <b/>\n</a>\n");
}

TEST(XmlWriter, CompactModeHasNoWhitespace) {
  Document doc;
  Element* root = doc.create_root("a");
  root->append_element("b")->append_text("t");
  WriteOptions options;
  options.declaration = false;
  options.pretty = false;
  EXPECT_EQ(write(doc, options), "<a><b>t</b></a>");
}

TEST(XmlWriter, SubtreeOverloadSerializesWithoutDeclaration) {
  Document doc;
  Element* root = doc.create_root("a");
  Element* child = root->append_element("b");
  child->set_attribute("x", "1");
  const std::string text = write(*child, {.pretty = false});
  EXPECT_EQ(text, "<b x=\"1\"/>");
}

TEST(XmlWriter, AttributeControlCharactersRoundTrip) {
  Document doc;
  doc.create_root("e")->set_attribute("a", "line1\nline2\tend");
  const std::string text = write(doc);
  auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().str();
  EXPECT_EQ(reparsed.value().root()->attribute("a"), "line1\nline2\tend");
}

TEST(XmlWriter, RoundTripIsIdempotent) {
  const char* kInput = "<a x=\"1\"><b>text</b><c/></a>";
  auto doc = parse(kInput);
  ASSERT_TRUE(doc.ok());
  const std::string once = write(doc.value());
  auto reparsed = parse(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(write(reparsed.value()), once);
}

}  // namespace
}  // namespace pdl::xml
