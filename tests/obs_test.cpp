#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "json_checker.hpp"
#include "obs/env.hpp"
#include "obs/event_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "starvm/engine.hpp"
#include "starvm/trace_export.hpp"
#include "util/string_util.hpp"

namespace obs {
namespace {

TEST(Metrics, CounterCountsAndResets) {
  Counter& c = counter("test.counter_basic");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), before + 5);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  // The registry hands back the same instrument for the same name.
  EXPECT_EQ(&counter("test.counter_basic"), &c);
}

TEST(Metrics, GaugeTracksLevelAndHighWater) {
  Gauge& g = gauge("test.gauge_basic");
  g.reset();
  g.add(3);
  g.add(2);
  g.add(-4);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.high_water(), 5);
  g.set(10);
  EXPECT_EQ(g.high_water(), 10);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
  EXPECT_EQ(g.high_water(), 10);
}

TEST(Metrics, HistogramLog2Buckets) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);

  Histogram& h = histogram("test.hist_basic");
  h.reset();
  h.record(0);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Metrics, SnapshotJsonParsesAndListsInstruments) {
  counter("test.snapshot_counter").inc(7);
  gauge("test.snapshot_gauge").set(3);
  histogram("test.snapshot_hist").record(42);
  const std::string json = metrics_snapshot_json();
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, "test.snapshot_counter"));
  EXPECT_TRUE(testjson::contains_string(parsed, "test.snapshot_gauge"));
  EXPECT_TRUE(testjson::contains_string(parsed, "test.snapshot_hist"));
  EXPECT_NE(json.find("\"test.snapshot_counter\":7"), std::string::npos) << json;
}

TEST(Metrics, ResetKeepsReferencesValid) {
  Counter& c = counter("test.reset_ref");
  c.inc(9);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(counter("test.reset_ref").value(), 1u);
}

TEST(Trace, SpanRecordsOnlyWhenEnabled) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(false);
  { Span span("off.work"); }
  EXPECT_TRUE(tracer.snapshot().empty());

  tracer.set_enabled(true);
  {
    Span span("on.work", "detail text");
  }
  tracer.set_enabled(false);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "on.work");
  EXPECT_EQ(spans[0].detail, "detail text");
  EXPECT_GE(spans[0].dur_us, 0.0);
  tracer.clear();
}

TEST(Trace, ThreadOrdinalsAreStableAndDistinct) {
  const std::uint32_t mine = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), mine);
  std::uint32_t other = mine;
  std::thread([&] { other = thread_ordinal(); }).join();
  EXPECT_NE(other, mine);
}

TEST(Trace, JsonEscapeCoversSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(Trace, ChromeTraceOfSpansIsValidJson) {
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{"parse \"quoted\"", "file\\path", 10.0, 5.0, 0});
  spans.push_back(SpanRecord{"codegen", "", 20.0, 1.0, 1});
  const std::string json = to_chrome_trace(spans);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, "parse \"quoted\""));
  EXPECT_TRUE(testjson::contains_string(parsed, "thread_name"));
}

TEST(Events, MemorySinkReceivesValidJsonLines) {
  auto sink = std::make_shared<MemorySink>();
  auto previous = set_event_sink(sink);
  EXPECT_TRUE(has_event_sink());
  Event event("unit.test");
  event.str("key", "value \"x\"").num("n", std::uint64_t{42}).num("f", 1.5);
  emit_event(event);
  set_event_sink(previous);

  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = testjson::parse(lines[0]);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << lines[0];
  EXPECT_TRUE(testjson::contains_string(parsed, "unit.test"));
  EXPECT_TRUE(testjson::contains_string(parsed, "value \"x\""));
  EXPECT_NE(lines[0].find("\"n\":42"), std::string::npos);
}

TEST(Events, NoSinkMeansCheapNoOp) {
  auto previous = set_event_sink(nullptr);
  EXPECT_FALSE(has_event_sink());
  emit_event(Event("dropped"));  // must not crash
  set_event_sink(previous);
}

TEST(Events, JsonlFileSinkWritesOneLinePerEvent) {
  const std::string path = testing::TempDir() + "/obs_events.jsonl";
  {
    auto sink = std::make_shared<JsonlFileSink>(path);
    ASSERT_TRUE(sink->ok());
    auto previous = set_event_sink(sink);
    emit_event(Event("first"));
    emit_event(Event("second"));
    set_event_sink(previous);
  }
  const auto text = pdl::util::read_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("{\"event\":\"first\"}\n"), std::string::npos);
  EXPECT_NE(text->find("{\"event\":\"second\"}\n"), std::string::npos);
}

TEST(Env, TracePathIgnoresBooleanValues) {
  setenv("PDL_TRACE", "0", 1);
  EXPECT_EQ(env_trace_path(), "");
  setenv("PDL_TRACE", "1", 1);
  EXPECT_EQ(env_trace_path(), "");
  setenv("PDL_TRACE", "/tmp/x.json", 1);
  EXPECT_EQ(env_trace_path(), "/tmp/x.json");
  unsetenv("PDL_TRACE");
  EXPECT_EQ(env_trace_path(), "");
}

// --- Engine integration -------------------------------------------------------

starvm::EngineStats run_sample_engine(bool record_decisions,
                                      bool metrics = true) {
  // Engine hot-path instruments only sample while collection is on.
  set_metrics_enabled(metrics);
  starvm::EngineConfig config = starvm::EngineConfig::cpus(2, 10.0);
  config.mode = starvm::ExecutionMode::kPureSim;
  config.record_decisions = record_decisions;
  starvm::Engine engine(std::move(config));
  starvm::Codelet codelet;
  codelet.name = "work";
  codelet.impls.push_back({starvm::DeviceKind::kCpu, nullptr});
  codelet.flops = [](const std::vector<starvm::BufferView>&) { return 1e8; };
  std::vector<std::vector<double>> buffers(4, std::vector<double>(8));
  for (auto& buffer : buffers) {
    starvm::DataHandle* handle = engine.register_vector(buffer.data(), 8);
    engine.submit(
        starvm::TaskDesc{&codelet, {{handle, starvm::Access::kReadWrite}}, "t"});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  return engine.stats();
}

TEST(Decisions, OffByDefault) {
  const auto stats = run_sample_engine(false);
  EXPECT_EQ(stats.tasks_completed, 4u);
  EXPECT_TRUE(stats.decisions.empty());
}

TEST(Decisions, RecordedWithCandidatesWhenEnabled) {
  const std::uint64_t counted_before =
      counter("starvm.decisions.heft").value();
  const auto stats = run_sample_engine(true);
  EXPECT_EQ(counter("starvm.decisions.heft").value(), counted_before + 4);
  ASSERT_EQ(stats.decisions.size(), 4u);
  for (const auto& decision : stats.decisions) {
    EXPECT_GE(decision.chosen, 0);
    // The two identical CPUs form one placement class: one candidate entry
    // standing for both devices.
    ASSERT_EQ(decision.candidates.size(), 1u);
    for (const auto& candidate : decision.candidates) {
      EXPECT_FALSE(candidate.device_name.empty());
      EXPECT_EQ(candidate.class_size, 2);
      EXPECT_GE(candidate.est_finish_vtime, decision.decided_vtime);
    }
  }
}

TEST(Decisions, AppearAsInstantEventsInChromeTrace) {
  const auto stats = run_sample_engine(true);
  const std::string json = starvm::to_chrome_trace(stats);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":["), std::string::npos);
}

TEST(Decisions, ForwardedToEventSink) {
  auto sink = std::make_shared<MemorySink>();
  auto previous = set_event_sink(sink);
  run_sample_engine(false);  // sink alone must activate recording
  set_event_sink(previous);
  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    const auto parsed = testjson::parse(line);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << line;
    EXPECT_TRUE(testjson::contains_string(parsed, "starvm.decision"));
  }
}

TEST(Merged, TraceCarriesBothLanes) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  { Span span("toolchain.step"); }
  tracer.set_enabled(false);
  const auto stats = run_sample_engine(true);
  const std::string json =
      starvm::merged_chrome_trace(tracer.snapshot(), &stats);
  tracer.clear();

  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "toolchain wall time"));
  EXPECT_TRUE(testjson::contains_string(parsed, "engine virtual time"));
  EXPECT_TRUE(testjson::contains_string(parsed, "toolchain.step"));
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "decision events";
}

TEST(Merged, SpansAloneWhenNoStats) {
  const std::string json = starvm::merged_chrome_trace({}, nullptr);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "toolchain wall time"));
  EXPECT_FALSE(testjson::contains_string(parsed, "engine virtual time"));
}

TEST(EngineMetrics, CountersTickOnExecution) {
  const std::uint64_t tasks_before = counter("starvm.tasks_completed").value();
  const std::uint64_t hist_before = histogram("starvm.task_exec_us").count();
  run_sample_engine(false);
  EXPECT_EQ(counter("starvm.tasks_completed").value(), tasks_before + 4);
  EXPECT_EQ(histogram("starvm.task_exec_us").count(), hist_before + 4);
  EXPECT_GE(gauge("starvm.ready_queue").high_water(), 1);
}

TEST(EngineMetrics, HotPathInstrumentsIdleWhileCollectionOff) {
  const std::uint64_t tasks_before = counter("starvm.tasks_completed").value();
  const auto stats = run_sample_engine(false, /*metrics=*/false);
  set_metrics_enabled(true);  // restore for later tests
  EXPECT_EQ(stats.tasks_completed, 4u);  // EngineStats itself is unaffected
  EXPECT_EQ(counter("starvm.tasks_completed").value(), tasks_before);
}

TEST(Metrics, QuantileInterpolatesAndClampsToObservedMax) {
  Histogram& h = histogram("test.hist_quantile");
  h.reset();
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram

  for (int i = 0; i < 99; ++i) h.record(100);
  // One populated bucket [64, 127]: every quantile interpolates inside it
  // and never exceeds the observed max.
  EXPECT_GT(h.quantile(0.05), 0.0);
  EXPECT_LE(h.quantile(0.99), 100.0);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.99));

  h.record(100000);  // a single outlier in a much higher bucket
  EXPECT_LE(h.quantile(1.0), 100000.0);
  EXPECT_GT(h.quantile(1.0), h.quantile(0.5));
  // p50 stays with the bulk of the distribution, not the outlier.
  EXPECT_LE(h.quantile(0.5), 127.0);
}

TEST(Metrics, PrometheusExposesAllInstrumentKinds) {
  counter("test.prom_counter").inc(3);
  gauge("test.prom_gauge").set(7);
  Histogram& h = histogram("test.prom_hist");
  h.reset();
  h.record(5);
  h.record(900);

  const std::string text = render_prometheus();
  EXPECT_NE(text.find("# TYPE pdl_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pdl_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("pdl_test_prom_gauge_high_water"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pdl_test_prom_hist histogram"),
            std::string::npos);
  // Cumulative le-buckets end with the +Inf catch-all and the quantile
  // estimate gauges ride along.
  EXPECT_NE(text.find("pdl_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pdl_test_prom_hist_sum 905"), std::string::npos);
  EXPECT_NE(text.find("pdl_test_prom_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("pdl_test_prom_hist_p50"), std::string::npos);
  EXPECT_NE(text.find("pdl_test_prom_hist_p99"), std::string::npos);
}

TEST(Metrics, SnapshotJsonCarriesQuantileEstimates) {
  Histogram& h = histogram("test.hist_json_quantiles");
  h.reset();
  for (int i = 0; i < 32; ++i) h.record(10);
  const std::string json = metrics_snapshot_json();
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, "test.hist_json_quantiles"));
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// --- Flight recorder rings ---------------------------------------------------

TEST(Flight, RingRecordsAndSnapshotsInOrder) {
  FlightRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  ring.record(FlightKind::kTaskStart, 1, 42, 0, 1.0, 0.0, 0.0);
  ring.record(FlightKind::kTaskEnd, 1, 42, 0, 1.0, 2.5, 1.5);
  EXPECT_EQ(ring.produced(), 2u);
  EXPECT_EQ(ring.overwritten(), 0u);

  std::vector<FlightEvent> events;
  ring.snapshot_into(events, 3);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].ring, 3u);
  EXPECT_EQ(events[0].kind, FlightKind::kTaskStart);
  EXPECT_EQ(events[0].task, 42u);
  EXPECT_FALSE(events[0].has_end());
  EXPECT_EQ(events[1].kind, FlightKind::kTaskEnd);
  EXPECT_TRUE(events[1].has_end());
  EXPECT_DOUBLE_EQ(events[1].t1, 2.5);
  EXPECT_DOUBLE_EQ(events[1].value, 1.5);
}

TEST(Flight, RingWraparoundKeepsNewestRecords) {
  FlightRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(FlightKind::kQueueDepth, 0, i, 0, static_cast<double>(i), 0.0,
                0.0);
  }
  EXPECT_EQ(ring.produced(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);

  std::vector<FlightEvent> events;
  ring.snapshot_into(events, 0);
  ASSERT_EQ(events.size(), 8u);  // exactly the resident window
  EXPECT_EQ(events.front().seq, 12u);  // oldest survivor
  EXPECT_EQ(events.back().seq, 19u);   // newest record
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(Flight, RecorderMergesRingsByTime) {
  FlightRecorder recorder(2, 8);
  recorder.ring(0).record(FlightKind::kTaskStart, 0, 1, 0, 2.0, 0.0, 0.0);
  recorder.ring(1).record(FlightKind::kTaskStart, 0, 2, 1, 1.0, 0.0, 0.0);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].task, 2u);  // earlier t0 first, regardless of ring
  EXPECT_EQ(events[1].task, 1u);
  EXPECT_EQ(recorder.produced(), 2u);
  EXPECT_GT(recorder.memory_bytes(), 0u);
}

TEST(Flight, EventsJsonlHeaderAndLabels) {
  FlightRecorder recorder(1, 8);
  recorder.ring(0).record(FlightKind::kTaskStart, 1, 7, 0, 0.5, 0.0, 0.0);
  recorder.ring(0).record(FlightKind::kFailure, 2, 7, 0, 0.9, 0.0, 0.0);
  const std::string jsonl = flight_events_jsonl(
      recorder.snapshot(), "unit_test", recorder.produced(),
      recorder.overwritten(),
      [](std::uint64_t task) { return task == 7 ? "dgemm[7]" : ""; });

  // One JSON object per line; the header line carries the dump reason.
  std::istringstream lines(jsonl);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const auto parsed = testjson::parse(line);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_NE(jsonl.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(jsonl.find("task_start"), std::string::npos);
  EXPECT_NE(jsonl.find("failure"), std::string::npos);
  EXPECT_NE(jsonl.find("dgemm[7]"), std::string::npos);
}

}  // namespace
}  // namespace obs
