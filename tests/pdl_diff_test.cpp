#include <gtest/gtest.h>

#include "cascabel/feedback.hpp"
#include "discovery/presets.hpp"
#include "pdl/diff.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

bool has_entry(const std::vector<DiffEntry>& entries, DiffKind kind,
               std::string_view subject = {}) {
  for (const auto& e : entries) {
    if (e.kind == kind && (subject.empty() || e.subject == subject)) return true;
  }
  return false;
}

TEST(Diff, IdenticalPlatformsHaveNoDifferences) {
  const Platform a = discovery::paper_platform_starpu_2gpu();
  const Platform b = a.clone();
  EXPECT_TRUE(diff(a, b).empty());
  EXPECT_EQ(to_string(diff(a, b)), "(no differences)\n");
}

TEST(Diff, DetectsAddedAndRemovedPus) {
  const Platform a = discovery::paper_platform_starpu_cpu();
  const Platform b = discovery::paper_platform_starpu_2gpu();
  const auto forward = diff(a, b);
  EXPECT_TRUE(has_entry(forward, DiffKind::kPuAdded));
  EXPECT_FALSE(has_entry(forward, DiffKind::kPuRemoved));
  const auto backward = diff(b, a);
  EXPECT_TRUE(has_entry(backward, DiffKind::kPuRemoved));
}

TEST(Diff, DetectsPropertyChanges) {
  Platform a = discovery::paper_platform_starpu_cpu();
  Platform b = a.clone();
  auto* cores = const_cast<ProcessingUnit*>(find_pu(b, "cpu_cores"));
  cores->descriptor().set(props::kSustainedGflops, "5.0");
  cores->descriptor().add("NEW_PROP", "x");
  cores->descriptor().remove(props::kFrequencyMhz);

  const auto entries = diff(a, b);
  EXPECT_TRUE(has_entry(entries, DiffKind::kPropertyChanged, props::kSustainedGflops));
  EXPECT_TRUE(has_entry(entries, DiffKind::kPropertyAdded, "NEW_PROP"));
  EXPECT_TRUE(has_entry(entries, DiffKind::kPropertyRemoved, props::kFrequencyMhz));
  // Exactly those three.
  EXPECT_EQ(entries.size(), 3u);
}

TEST(Diff, FixednessChangeIsAChange) {
  Platform a = discovery::paper_platform_starpu_cpu();
  Platform b = a.clone();
  const_cast<ProcessingUnit*>(find_pu(b, "cpu_cores"))
      ->descriptor()
      .find(props::kSustainedGflops)
      ->fixed = false;
  const auto entries = diff(a, b);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, DiffKind::kPropertyChanged);
  EXPECT_NE(entries[0].after.find("unfixed"), std::string::npos);
}

TEST(Diff, DetectsQuantityKindGroupsAndWiring) {
  Platform a = discovery::paper_platform_starpu_2gpu();
  Platform b = a.clone();
  auto* cores = const_cast<ProcessingUnit*>(find_pu(b, "cpu_cores"));
  cores->set_quantity(4);
  cores->logic_groups().push_back("extra");
  auto* master = const_cast<ProcessingUnit*>(find_pu(b, "0"));
  master->interconnects().pop_back();
  master->memory_regions().clear();

  const auto entries = diff(a, b);
  EXPECT_TRUE(has_entry(entries, DiffKind::kQuantityChanged));
  EXPECT_TRUE(has_entry(entries, DiffKind::kGroupsChanged));
  EXPECT_TRUE(has_entry(entries, DiffKind::kInterconnectsChanged));
  EXPECT_TRUE(has_entry(entries, DiffKind::kMemoryRegionsChanged));
}

TEST(Diff, RendersHumanReadableLines) {
  Platform a = discovery::paper_platform_single();
  Platform b = a.clone();
  const_cast<ProcessingUnit*>(find_pu(b, "0"))
      ->descriptor()
      .set(props::kCompiler, "clang");
  const std::string text = to_string(diff(a, b));
  EXPECT_NE(text.find("property-changed @ 0 [COMPILER]: 'gcc' -> 'clang'"),
            std::string::npos);
}

TEST(Diff, FeedbackRefinementIsVisibleInDiff) {
  // The intended workflow: refine_platform + diff shows exactly what the
  // runtime learned.
  Platform target = discovery::paper_platform_starpu_cpu();
  starvm::EngineStats stats;
  stats.devices.push_back(
      starvm::DeviceStats{"cpu_cores#0", starvm::DeviceKind::kCpu, 1, 1.0, 0.0});
  stats.trace.push_back(starvm::TaskTrace{1, "t", 0, 0.0, 1.0, 0.0, 1.0, 5e9});
  const Platform refined = cascabel::refine_platform(target, stats);

  const auto entries = diff(target, refined);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, DiffKind::kPropertyAdded);
  EXPECT_EQ(entries[0].subject, props::kMeasuredGflops);
}

}  // namespace
}  // namespace pdl
