#include <gtest/gtest.h>

#include "discovery/presets.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace starvm {
namespace {

using pdl::discovery::cell_be_platform;
using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

int count_kind(const EngineConfig& config, DeviceKind kind) {
  int n = 0;
  for (const auto& d : config.devices) {
    if (d.kind == kind) ++n;
  }
  return n;
}

TEST(Bridge, SinglePlatformYieldsOneMasterCpu) {
  auto config = engine_config_from_platform(paper_platform_single());
  ASSERT_TRUE(config.ok()) << config.error().str();
  ASSERT_EQ(config.value().devices.size(), 1u);
  EXPECT_EQ(config.value().devices[0].kind, DeviceKind::kCpu);
  // SUSTAINED_GFLOPS=9.8 from the preset master.
  EXPECT_NEAR(config.value().devices[0].sustained_gflops, 9.8, 1e-9);
}

TEST(Bridge, StarpuCpuPlatformYieldsEightCpus) {
  auto config = engine_config_from_platform(paper_platform_starpu_cpu());
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 8);
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 0);
}

TEST(Bridge, GpuPlatformDedicatesDriverCores) {
  auto config = engine_config_from_platform(paper_platform_starpu_2gpu());
  ASSERT_TRUE(config.ok());
  // StarPU-style: 8 cores - 2 GPU drivers = 6 CPU workers + 2 accelerators.
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 6);
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 2);
}

TEST(Bridge, DriverCoreDedicationCanBeDisabled) {
  BridgeOptions options;
  options.dedicate_driver_cores = false;
  auto config = engine_config_from_platform(paper_platform_starpu_2gpu(), options);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 8);
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 2);
}

TEST(Bridge, AcceleratorRatesAndLinksComeFromPdl) {
  auto config = engine_config_from_platform(paper_platform_starpu_2gpu());
  ASSERT_TRUE(config.ok());
  const DeviceSpec* gtx480 = nullptr;
  const DeviceSpec* gtx285 = nullptr;
  for (const auto& d : config.value().devices) {
    if (d.name == "gpu1") gtx480 = &d;
    if (d.name == "gpu2") gtx285 = &d;
  }
  ASSERT_NE(gtx480, nullptr);
  ASSERT_NE(gtx285, nullptr);
  // 168 * 0.62 and 88.5 * 0.80 from the device DB via SUSTAINED_GFLOPS.
  EXPECT_NEAR(gtx480->sustained_gflops, 168.0 * 0.62, 0.5);
  EXPECT_NEAR(gtx285->sustained_gflops, 88.5 * 0.80, 0.5);
  // PCIe parameters from the Interconnect descriptor.
  EXPECT_NEAR(gtx480->link_bandwidth_gbs, 5.6, 1e-6);
  EXPECT_NEAR(gtx480->link_latency_us, 12.0, 1e-6);
}

TEST(Bridge, CellPlatformMapsSpesToAccelerators) {
  auto config = engine_config_from_platform(cell_be_platform());
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 8);
}

TEST(Bridge, HybridPusContributeExecutionCapacity) {
  // Paper §III-A: Hybrids act as master AND worker — they execute tasks.
  auto config =
      engine_config_from_platform(pdl::discovery::hierarchical_hybrid_platform());
  ASSERT_TRUE(config.ok());
  // Workers: 4+4 x86 cores (CPU), 2 gpu (accelerator); hybrids h0,h1 (x86,
  // CPU). Driver-core dedication removes 2 CPUs for the 2 accelerators.
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 2);
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 8 + 2 - 2);
}

TEST(Bridge, CpuWorkerQuantityExpands) {
  pdl::Platform p("t");
  pdl::ProcessingUnit* m = p.add_master("m");
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "cores", 3);
  w->descriptor().add("ARCHITECTURE", "x86_core");
  auto config = engine_config_from_platform(p);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 3);
  EXPECT_EQ(config.value().devices[0].name, "cores#0");
}

TEST(Bridge, QuantityOneCpuWorkerKeepsPlainName) {
  // Regression: quantity="1" CPUs used to be named "id#0" while accelerators
  // were named "id" — breaking name parity and profile instance pooling.
  pdl::Platform p("t");
  pdl::ProcessingUnit* m = p.add_master("m");
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "solo", 1);
  w->descriptor().add("ARCHITECTURE", "x86_core");
  auto config = engine_config_from_platform(p);
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config.value().devices.size(), 1u);
  EXPECT_EQ(config.value().devices[0].name, "solo");
}

TEST(Bridge, ManycoreThousandWorkerRoundTrip) {
  // The ET-SOC1-class platform: 1088 quantity-expanded RISC-V workers
  // bridge to 1088 host-node CPU devices with stable `id#i` names, and the
  // engine collapses them into a single placement class.
  auto config =
      engine_config_from_platform(pdl::discovery::manycore_platform(1088));
  ASSERT_TRUE(config.ok()) << config.error().str();
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kCpu), 1088);
  EXPECT_EQ(count_kind(config.value(), DeviceKind::kAccelerator), 0);
  EXPECT_EQ(config.value().devices.front().name, "minion#0");
  EXPECT_EQ(config.value().devices.back().name, "minion#1087");
  // No accelerators means driver-core dedication must not eat any workers.
  EXPECT_EQ(config.value().devices.size(), 1088u);

  EngineConfig engine_config = std::move(config).value();
  engine_config.mode = ExecutionMode::kPureSim;  // 1088 threads would be absurd
  Engine engine(std::move(engine_config));
  EXPECT_EQ(engine.device_count(), 1088u);
  EXPECT_EQ(engine.placement_class_count(), 1u);
}

TEST(Bridge, EmptyPlatformFails) {
  pdl::Platform p;
  auto config = engine_config_from_platform(p);
  EXPECT_FALSE(config.ok());
}

TEST(Bridge, DefaultsApplyWithoutRateProperties) {
  pdl::Platform p("t");
  pdl::ProcessingUnit* m = p.add_master("m");
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "w");
  w->descriptor().add("ARCHITECTURE", "gpu");
  BridgeOptions options;
  options.default_accel_gflops = 77.0;
  auto config = engine_config_from_platform(p, options);
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config.value().devices.size(), 1u);
  EXPECT_DOUBLE_EQ(config.value().devices[0].sustained_gflops, 77.0);
}

TEST(Bridge, ConfiguredEnginesActuallyRun) {
  auto config = engine_config_from_platform(paper_platform_starpu_cpu());
  ASSERT_TRUE(config.ok());
  Engine engine(std::move(config).value());
  std::vector<double> data(8, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c;
  c.name = "touch";
  c.impls.push_back(Implementation{DeviceKind::kCpu, [](const ExecContext& ctx) {
                                     ctx.buffer(0)[0] += 1.0;
                                   }});
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(data[0], 2.0);
}

}  // namespace
}  // namespace starvm
