// Property-based round-trip testing: randomly generated platforms must
// survive serialize -> parse structurally intact and validate cleanly.
#include <gtest/gtest.h>

#include <random>

#include "pdl/extension.hpp"
#include "pdl/parser.hpp"
#include "pdl/pattern.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

/// Random valid platform: masters with hybrid/worker subtrees, properties
/// (including extension-typed, units, unfixed), groups, MRs, interconnects.
Platform random_platform(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small(1, 4);

  Platform platform("random-" + std::to_string(seed));
  int next_id = 0;
  const auto fresh_id = [&] { return "pu" + std::to_string(next_id++); };

  const auto decorate = [&](ProcessingUnit& pu, const char* arch) {
    pu.descriptor().add(props::kArchitecture, arch);
    if (coin(rng)) pu.descriptor().add(props::kFrequencyMhz, "2000");
    if (coin(rng)) {
      Property p;
      p.name = props::kOclLocalMemSize;
      p.value = "48";
      p.unit = "kB";
      p.fixed = false;
      p.xsi_type = props::kOclPropertyType;
      pu.descriptor().add(std::move(p));
    }
    if (coin(rng)) pu.logic_groups().push_back(coin(rng) ? "g1" : "g2");
    if (coin(rng)) {
      MemoryRegion mr;
      mr.id = "mr_" + pu.id();
      Property size;
      size.name = props::kSize;
      size.value = "1024";
      size.unit = "MB";
      mr.descriptor.add(std::move(size));
      pu.memory_regions().push_back(std::move(mr));
    }
  };

  const int masters = small(rng) > 3 ? 2 : 1;
  for (int m = 0; m < masters; ++m) {
    ProcessingUnit* master = platform.add_master(fresh_id());
    decorate(*master, "x86");
    const int children = small(rng);
    std::vector<std::string> worker_ids;
    for (int c = 0; c < children; ++c) {
      if (coin(rng)) {
        ProcessingUnit* hybrid = master->add_child(PuKind::kHybrid, fresh_id());
        decorate(*hybrid, "x86");
        ProcessingUnit* w =
            hybrid->add_child(PuKind::kWorker, fresh_id(), small(rng));
        decorate(*w, coin(rng) ? "gpu" : "x86_core");
        worker_ids.push_back(w->id());
      } else {
        ProcessingUnit* w =
            master->add_child(PuKind::kWorker, fresh_id(), small(rng));
        decorate(*w, coin(rng) ? "gpu" : "x86_core");
        worker_ids.push_back(w->id());
      }
    }
    for (const auto& wid : worker_ids) {
      if (coin(rng)) {
        Interconnect ic;
        ic.type = coin(rng) ? "PCIe" : "QPI";
        ic.from = master->id();
        ic.to = wid;
        ic.scheme = "rDMA";
        Property bw;
        bw.name = props::kIcBandwidthGBs;
        bw.value = "8.0";
        ic.descriptor.add(std::move(bw));
        master->interconnects().push_back(std::move(ic));
      }
    }
  }
  return platform;
}

bool pus_equal(const ProcessingUnit& a, const ProcessingUnit& b) {
  if (a.kind() != b.kind() || a.id() != b.id() || a.quantity() != b.quantity()) {
    return false;
  }
  if (a.descriptor().size() != b.descriptor().size()) return false;
  for (std::size_t i = 0; i < a.descriptor().size(); ++i) {
    const Property& pa = a.descriptor().properties()[i];
    const Property& pb = b.descriptor().properties()[i];
    if (pa.name != pb.name || pa.value != pb.value || pa.unit != pb.unit ||
        pa.fixed != pb.fixed || pa.xsi_type != pb.xsi_type) {
      return false;
    }
  }
  if (a.logic_groups() != b.logic_groups()) return false;
  if (a.memory_regions().size() != b.memory_regions().size()) return false;
  for (std::size_t i = 0; i < a.memory_regions().size(); ++i) {
    if (a.memory_regions()[i].id != b.memory_regions()[i].id) return false;
  }
  if (a.interconnects().size() != b.interconnects().size()) return false;
  for (std::size_t i = 0; i < a.interconnects().size(); ++i) {
    const Interconnect& ia = a.interconnects()[i];
    const Interconnect& ib = b.interconnects()[i];
    if (ia.type != ib.type || ia.from != ib.from || ia.to != ib.to) return false;
  }
  if (a.children().size() != b.children().size()) return false;
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    if (!pus_equal(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

class RoundTripTest : public testing::TestWithParam<unsigned> {};

TEST_P(RoundTripTest, SerializeParsePreservesStructure) {
  const Platform original = random_platform(GetParam());
  const std::string xml = serialize(original);

  Diagnostics diags;
  auto reparsed = parse_platform(xml, diags);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().str();
  EXPECT_FALSE(has_errors(diags));

  ASSERT_EQ(reparsed.value().masters().size(), original.masters().size());
  for (std::size_t m = 0; m < original.masters().size(); ++m) {
    EXPECT_TRUE(pus_equal(*original.masters()[m], *reparsed.value().masters()[m]))
        << "seed " << GetParam() << " master " << m << "\n"
        << xml;
  }
  EXPECT_EQ(reparsed.value().name(), original.name());
}

TEST_P(RoundTripTest, GeneratedPlatformsAreValid) {
  const Platform platform = random_platform(GetParam());
  Diagnostics diags;
  EXPECT_TRUE(validate(platform, diags));
  EXPECT_TRUE(builtin_registry().validate_properties(platform, diags));
  for (const auto& d : diags) {
    EXPECT_NE(d.severity, Severity::kError) << d.str();
  }
}

TEST_P(RoundTripTest, DoubleRoundTripIsIdentity) {
  const Platform original = random_platform(GetParam());
  const std::string once = serialize(original);
  Diagnostics diags;
  auto reparsed = parse_platform(once, diags);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(serialize(reparsed.value()), once) << "seed " << GetParam();
}

TEST_P(RoundTripTest, CloneEqualsOriginal) {
  const Platform original = random_platform(GetParam());
  const Platform copy = original.clone();
  ASSERT_EQ(copy.masters().size(), original.masters().size());
  for (std::size_t m = 0; m < original.masters().size(); ++m) {
    EXPECT_TRUE(pus_equal(*original.masters()[m], *copy.masters()[m]));
  }
}

TEST_P(RoundTripTest, PlatformSatisfiesItsOwnStructuralPattern) {
  // pattern_to_string of a concrete platform is a pattern the platform
  // itself must satisfy: every property becomes an equality constraint
  // against its own value, every child is present.
  const Platform platform = random_platform(GetParam());
  // Compact-pattern property names may not contain ()=,[] — the generator
  // never produces such names, and values are plain tokens.
  for (const auto& master : platform.masters()) {
    const std::string pattern = "dummy", summary = pattern_to_string(*master);
    (void)pattern;
    Platform single;
    single.add_master(clone_pu(*master));
    const MatchResult result = match(summary, single);
    EXPECT_TRUE(result.matched) << "seed " << GetParam() << "\npattern: " << summary
                                << "\nreason: " << result.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, testing::Range(0u, 24u));

}  // namespace
}  // namespace pdl
