#include <gtest/gtest.h>

#include "discovery/discovery.hpp"
#include "discovery/presets.hpp"
#include "pdl/extension.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

TEST(SchemaRegistry, BuiltinsArePresent) {
  const SchemaRegistry& reg = builtin_registry();
  EXPECT_NE(reg.find_by_type(props::kOclPropertyType), nullptr);
  EXPECT_NE(reg.find_by_type(props::kCudaPropertyType), nullptr);
  EXPECT_NE(reg.find_by_type(props::kCellPropertyType), nullptr);
  EXPECT_NE(reg.find_by_type(""), nullptr);  // base vocabulary
  EXPECT_NE(reg.find_by_prefix("ocl"), nullptr);
  EXPECT_EQ(reg.find_by_prefix("unknown"), nullptr);
}

TEST(SchemaRegistry, OclSubschemaMatchesPaperListing2) {
  const Subschema* ocl = builtin_registry().find_by_type(props::kOclPropertyType);
  ASSERT_NE(ocl, nullptr);
  EXPECT_EQ(ocl->prefix, "ocl");
  EXPECT_EQ(ocl->version_string(), "1.1");  // OpenCL 1.1, the paper's citation
  for (const char* name :
       {props::kOclDeviceName, props::kOclMaxComputeUnits,
        props::kOclMaxWorkItemDimensions, props::kOclGlobalMemSize,
        props::kOclLocalMemSize}) {
    EXPECT_NE(ocl->find(name), nullptr) << name;
  }
}

TEST(SchemaRegistry, VersioningRejectsDowngrades) {
  SchemaRegistry reg = SchemaRegistry::with_builtins();
  Subschema older;
  older.prefix = "ocl";
  older.type_name = props::kOclPropertyType;
  older.version_major = 1;
  older.version_minor = 0;  // builtin is 1.1
  EXPECT_FALSE(reg.register_subschema(older));

  Subschema newer = older;
  newer.version_major = 2;
  newer.properties.push_back({"NEW_PROP", PropertyValueKind::kInt, false, ""});
  EXPECT_TRUE(reg.register_subschema(newer));
  EXPECT_EQ(reg.find_by_type(props::kOclPropertyType)->version_string(), "2.0");
}

TEST(SchemaRegistry, NewSubschemasCanBeRegistered) {
  // Paper: "New subschemas for novel platforms ... can be provided by
  // application programmer, tool-developer or even hardware vendors."
  SchemaRegistry reg = SchemaRegistry::with_builtins();
  Subschema fpga;
  fpga.prefix = "fpga";
  fpga.uri = "urn:vendor:fpga";
  fpga.type_name = "fpga:fpgaPropertyType";
  fpga.properties = {{"LUT_COUNT", PropertyValueKind::kInt, false, "logic cells"}};
  EXPECT_TRUE(reg.register_subschema(fpga));
  EXPECT_NE(reg.find_by_type("fpga:fpgaPropertyType"), nullptr);
}

Platform platform_with_property(Property prop) {
  Platform p("t");
  p.add_master("m")->descriptor().add(std::move(prop));
  return p;
}

TEST(ValidateProperties, AcceptsDiscoveredGpuWorker) {
  Platform p = discovery::paper_platform_starpu_2gpu();
  Diagnostics diags;
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  EXPECT_FALSE(has_errors(diags));
}

TEST(ValidateProperties, UnknownSubschemaIsToleratedAsWarning) {
  Property prop;
  prop.name = "WEIRD";
  prop.value = "1";
  prop.xsi_type = "future:unknownType";
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
}

TEST(ValidateProperties, UnknownExtensionPropertyWarns) {
  Property prop;
  prop.name = "NOT_IN_OCL";
  prop.value = "1";
  prop.xsi_type = props::kOclPropertyType;
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
}

TEST(ValidateProperties, BasePropertiesAreOpenVocabulary) {
  Property prop;
  prop.name = "MY_CUSTOM_THING";
  prop.value = "whatever";
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  EXPECT_TRUE(diags.empty());
}

TEST(ValidateProperties, IntTypeMismatchIsError) {
  Property prop;
  prop.name = props::kOclMaxComputeUnits;
  prop.value = "many";
  prop.xsi_type = props::kOclPropertyType;
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_FALSE(builtin_registry().validate_properties(p, diags));
}

TEST(ValidateProperties, SizeWithoutUnitIsError) {
  Property prop;
  prop.name = props::kOclGlobalMemSize;
  prop.value = "1024";
  prop.xsi_type = props::kOclPropertyType;  // unit required
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_FALSE(builtin_registry().validate_properties(p, diags));
}

TEST(ValidateProperties, BoolTypeChecked) {
  Property prop;
  prop.name = props::kShared;
  prop.value = "maybe";
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_FALSE(builtin_registry().validate_properties(p, diags));
}

TEST(ValidateProperties, UnfixedBlankValuesAreAllowed) {
  // Unfixed = "editable by other tools or users" (paper §III-B): blank
  // until instantiated.
  Property prop;
  prop.name = props::kOclMaxComputeUnits;
  prop.fixed = false;
  prop.xsi_type = props::kOclPropertyType;
  Platform p = platform_with_property(prop);
  Diagnostics diags;
  EXPECT_TRUE(builtin_registry().validate_properties(p, diags));
  EXPECT_FALSE(has_errors(diags));
}

TEST(ValidateProperties, ChecksMemoryRegionAndInterconnectDescriptors) {
  Platform p("t");
  ProcessingUnit* m = p.add_master("m");
  MemoryRegion mr;
  mr.id = "ram";
  Property bad;
  bad.name = props::kSize;
  bad.value = "big";
  bad.unit = "kB";
  mr.descriptor.add(bad);
  m->memory_regions().push_back(mr);
  Diagnostics diags;
  EXPECT_FALSE(builtin_registry().validate_properties(p, diags));
}

TEST(PropertyValueKind, ToStringCoversAll) {
  EXPECT_EQ(to_string(PropertyValueKind::kString), "string");
  EXPECT_EQ(to_string(PropertyValueKind::kInt), "int");
  EXPECT_EQ(to_string(PropertyValueKind::kDouble), "double");
  EXPECT_EQ(to_string(PropertyValueKind::kSizeBytes), "size");
  EXPECT_EQ(to_string(PropertyValueKind::kBool), "bool");
}

}  // namespace
}  // namespace pdl
