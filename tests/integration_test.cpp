// End-to-end integration tests covering the paper's case study (§IV):
// one annotated serial program, translated against different PDL
// descriptors, executed (a) in-process through cascabel::rt and (b) as a
// really-compiled generated source file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "cascabel/translator.hpp"
#include "discovery/presets.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"
#include "util/string_util.hpp"

namespace cascabel {
namespace {

using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

// The case study input: a serial DGEMM call annotated for offloading.
constexpr const char* kDgemmProgram = R"(
#pragma cascabel task : x86 : Idgemm : dgemm_input : ( C: readwrite, A: read, B: read )
void dgemm_serial(double *C, double *A, double *B, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += A[i*n+k] * B[k*n+j];
      C[i*n+j] += sum;
    }
}

int run_case_study(double* C, double* A, double* B, int n) {
#pragma cascabel execute Idgemm : all (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)
  dgemm_serial(C, A, B, n);
  return 0;
}
)";

/// Translate the case study against a target, run it in-process, return
/// modeled makespan. Results are verified against a naive reference.
double run_case_study_inprocess(const pdl::Platform& target, std::size_t n) {
  auto translation = translate(kDgemmProgram, "dgemm_case.cpp", target);
  EXPECT_TRUE(translation.ok()) << translation.error().str();

  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  repo.register_program(translation.value().program);
  rt::Context ctx(target, std::move(repo));

  kernels::Matrix a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(11);
  b.fill_random(12);

  auto status = ctx.execute(
      "Idgemm", "all",
      {rt::arg_matrix(c.data(), n, n, AccessMode::kReadWrite,
                      DistributionKind::kBlock),
       rt::arg_matrix(a.data(), n, n, AccessMode::kRead, DistributionKind::kBlock),
       rt::arg_matrix(b.data(), n, n, AccessMode::kRead, DistributionKind::kNone)});
  EXPECT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());

  kernels::dgemm_naive(n, n, n, a.data(), b.data(), ref.data());
  EXPECT_LT(kernels::max_abs_diff(c.data(), ref.data(), n * n), 1e-9);
  return ctx.stats().makespan_seconds;
}

TEST(CaseStudy, SameInputThreePlatformsAllCorrect) {
  const std::size_t n = 128;
  const double t_single = run_case_study_inprocess(paper_platform_single(), n);
  const double t_cpu = run_case_study_inprocess(paper_platform_starpu_cpu(), n);
  const double t_gpu = run_case_study_inprocess(paper_platform_starpu_2gpu(), n);
  EXPECT_GT(t_single, 0.0);
  EXPECT_GT(t_cpu, 0.0);
  EXPECT_GT(t_gpu, 0.0);
}

TEST(CaseStudy, Figure5ShapeInPureSim) {
  // The paper's Figure 5 at reduced scale (pure simulation, N=2048):
  // single < starpu < starpu+2gpu in speedup terms.
  const std::size_t n = 2048;
  rt::Options options;
  options.mode = starvm::ExecutionMode::kPureSim;

  const auto makespan = [&](const pdl::Platform& target) {
    TaskRepository repo = TaskRepository::with_defaults();
    register_builtin_variants(repo);
    rt::Context ctx(target, std::move(repo), options);
    kernels::Matrix a(n, n), b(n, n), c(n, n);  // never touched in pure sim
    auto status = ctx.execute(
        "Idgemm", "all",
        {rt::arg_matrix(c.data(), n, n, AccessMode::kReadWrite,
                        DistributionKind::kBlock),
         rt::arg_matrix(a.data(), n, n, AccessMode::kRead, DistributionKind::kBlock),
         rt::arg_matrix(b.data(), n, n, AccessMode::kRead,
                        DistributionKind::kNone)});
    EXPECT_TRUE(status.ok()) << status.error().str();
    EXPECT_TRUE(ctx.wait().ok());
    return ctx.stats().makespan_seconds;
  };

  const double t_single = makespan(paper_platform_single());
  const double t_cpu = makespan(paper_platform_starpu_cpu());
  const double t_gpu = makespan(paper_platform_starpu_2gpu());

  const double speedup_cpu = t_single / t_cpu;
  const double speedup_gpu = t_single / t_gpu;

  // Shape of Figure 5: the 8-core version speeds up several-fold; the
  // 2-GPU version clearly beats the CPU-only version.
  EXPECT_GT(speedup_cpu, 3.0);
  EXPECT_LT(speedup_cpu, 9.0);  // cannot exceed 8 cores
  EXPECT_GT(speedup_gpu, speedup_cpu);
}

TEST(GeneratedSource, DgemmCaseStudyCompilesAndVerifies) {
  // The §IV-D case study as a really-compiled generated program: the
  // translated DGEMM must produce the same matrix as an inline reference.
  constexpr const char* kProgram = R"(
#include <cstdio>

#pragma cascabel task : x86 : Idgemm : dgemm_input : ( C: readwrite, A: read, B: read )
void dgemm_serial(double *C, double *A, double *B, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += A[i*n+k] * B[k*n+j];
      C[i*n+j] += sum;
    }
}

int main() {
  const int n = 48;
  static double A[48*48], B[48*48], C[48*48], R[48*48];
  for (int i = 0; i < n*n; ++i) { A[i] = (i % 7) * 0.25; B[i] = (i % 5) - 2.0; }
#pragma cascabel execute Idgemm : all (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)
  dgemm_serial(C, A, B, n);
  // Inline reference on R.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) sum += A[i*n+k] * B[k*n+j];
      R[i*n+j] += sum;
    }
  for (int i = 0; i < n*n; ++i) {
    const double d = C[i] - R[i];
    if (d > 1e-9 || d < -1e-9) { std::printf("DGEMM_BAD at %d\n", i); return 1; }
  }
  std::printf("DGEMM_OK\n");
  return 0;
}
)";
  auto translation =
      translate(kProgram, "dgemm_main.cpp", paper_platform_starpu_2gpu());
  ASSERT_TRUE(translation.ok()) << translation.error().str();

  const std::string dir = testing::TempDir();
  const std::string source_path = dir + "/cascabel_dgemm_gen.cpp";
  const std::string binary_path = dir + "/cascabel_dgemm_bin";
  ASSERT_TRUE(pdl::util::write_file(source_path, translation.value().output_source));

  const std::string compile_cmd =
      std::string("g++ -std=c++20 -O1 -I ") + PDL_SOURCE_DIR + "/src " + source_path +
      " " + PDL_BINARY_DIR + "/src/cascabel/libcascabel.a " + PDL_BINARY_DIR +
      "/src/annot/libcascabel_annot.a " + PDL_BINARY_DIR +
      "/src/discovery/libpdl_discovery.a " + PDL_BINARY_DIR +
      "/src/starvm/libstarvm.a " + PDL_BINARY_DIR +
      "/src/kernels/libpdl_kernels.a " + PDL_BINARY_DIR +
      "/src/pdl/libpdl_core.a " + PDL_BINARY_DIR + "/src/xml/libpdl_xml.a " +
      PDL_BINARY_DIR + "/src/util/libpdl_util.a " + PDL_BINARY_DIR +
      "/src/obs/libpdl_obs.a -lpthread -o " + binary_path +
      " 2> " + dir + "/dgemm_compile_errors.txt";
  ASSERT_EQ(std::system(compile_cmd.c_str()), 0)
      << pdl::util::read_file(dir + "/dgemm_compile_errors.txt")
             .value_or("(no stderr)");

  const std::string run_cmd =
      binary_path + " > " + dir + "/dgemm_run_output.txt 2>&1";
  EXPECT_EQ(std::system(run_cmd.c_str()), 0);
  const auto output = pdl::util::read_file(dir + "/dgemm_run_output.txt");
  ASSERT_TRUE(output.has_value());
  EXPECT_NE(output->find("DGEMM_OK"), std::string::npos) << *output;
}

TEST(GeneratedSource, CompilesAndRuns) {
  // Translate the paper's vecadd listing, write the generated file to disk,
  // compile it with the system compiler against this repository's
  // libraries, run it, and check its observable effect.
  constexpr const char* kProgram = R"(
#include <cstdio>

#pragma cascabel task : x86 : Ivecadd : vecadd01 : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}

int main() {
  const int N = 2048;
  static double A[2048];
  static double B[2048];
  for (int i = 0; i < N; ++i) { A[i] = 1.0; B[i] = 2.0; }
#pragma cascabel execute Ivecadd : cpu (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B, N);
  double sum = 0.0;
  for (int i = 0; i < N; ++i) sum += A[i];
  if (sum == 3.0 * N) { std::printf("CASE_STUDY_OK\n"); return 0; }
  std::printf("CASE_STUDY_BAD sum=%f\n", sum);
  return 1;
}
)";
  auto translation =
      translate(kProgram, "vecadd_main.cpp", paper_platform_starpu_cpu());
  ASSERT_TRUE(translation.ok()) << translation.error().str();

  const std::string dir = testing::TempDir();
  const std::string source_path = dir + "/cascabel_generated.cpp";
  const std::string binary_path = dir + "/cascabel_generated_bin";
  ASSERT_TRUE(pdl::util::write_file(source_path, translation.value().output_source));

  const std::string compile_cmd =
      std::string("g++ -std=c++20 -O1 -I ") + PDL_SOURCE_DIR + "/src " + source_path +
      " " + PDL_BINARY_DIR + "/src/cascabel/libcascabel.a " + PDL_BINARY_DIR +
      "/src/annot/libcascabel_annot.a " + PDL_BINARY_DIR +
      "/src/discovery/libpdl_discovery.a " + PDL_BINARY_DIR +
      "/src/starvm/libstarvm.a " + PDL_BINARY_DIR +
      "/src/kernels/libpdl_kernels.a " + PDL_BINARY_DIR +
      "/src/pdl/libpdl_core.a " + PDL_BINARY_DIR + "/src/xml/libpdl_xml.a " +
      PDL_BINARY_DIR + "/src/util/libpdl_util.a " + PDL_BINARY_DIR +
      "/src/obs/libpdl_obs.a -lpthread -o " + binary_path +
      " 2> " + dir + "/compile_errors.txt";
  const int compile_rc = std::system(compile_cmd.c_str());
  ASSERT_EQ(compile_rc, 0) << pdl::util::read_file(dir + "/compile_errors.txt")
                                  .value_or("(no stderr captured)");

  const std::string run_cmd = binary_path + " > " + dir + "/run_output.txt 2>&1";
  const int run_rc = std::system(run_cmd.c_str());
  EXPECT_EQ(run_rc, 0);
  const auto output = pdl::util::read_file(dir + "/run_output.txt");
  ASSERT_TRUE(output.has_value());
  EXPECT_NE(output->find("CASE_STUDY_OK"), std::string::npos) << *output;
}

}  // namespace
}  // namespace cascabel
