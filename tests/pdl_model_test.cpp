#include <gtest/gtest.h>

#include "pdl/model.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

TEST(PuKind, StringRoundTrip) {
  EXPECT_EQ(to_string(PuKind::kMaster), "Master");
  EXPECT_EQ(to_string(PuKind::kHybrid), "Hybrid");
  EXPECT_EQ(to_string(PuKind::kWorker), "Worker");
  EXPECT_EQ(pu_kind_from_string("Master"), PuKind::kMaster);
  EXPECT_EQ(pu_kind_from_string("Hybrid"), PuKind::kHybrid);
  EXPECT_EQ(pu_kind_from_string("Worker"), PuKind::kWorker);
  EXPECT_FALSE(pu_kind_from_string("master").has_value());  // case-sensitive
  EXPECT_FALSE(pu_kind_from_string("").has_value());
}

TEST(Property, NumericViews) {
  Property p{.name = "X", .value = "42"};
  EXPECT_EQ(p.as_int(), 42);
  EXPECT_DOUBLE_EQ(p.as_double().value(), 42.0);

  Property f{.name = "Y", .value = "2.5"};
  EXPECT_FALSE(f.as_int().has_value());
  EXPECT_DOUBLE_EQ(f.as_double().value(), 2.5);

  Property s{.name = "Z", .value = "gpu"};
  EXPECT_FALSE(s.as_int().has_value());
  EXPECT_FALSE(s.as_double().has_value());
}

TEST(Property, AsBytesHonorsUnits) {
  Property p{.name = "SIZE", .value = "48", .unit = "kB"};
  EXPECT_EQ(p.as_bytes(), 48 * 1024);
  p.unit = "MB";
  EXPECT_EQ(p.as_bytes(), 48LL * 1024 * 1024);
  p.unit = "GB";
  EXPECT_EQ(p.as_bytes(), 48LL * 1024 * 1024 * 1024);
  p.unit = "B";
  EXPECT_EQ(p.as_bytes(), 48);
  p.unit = "";
  EXPECT_EQ(p.as_bytes(), 48);
  p.unit = "parsec";
  EXPECT_FALSE(p.as_bytes().has_value());
  p.unit = "kB";
  p.value = "lots";
  EXPECT_FALSE(p.as_bytes().has_value());
}

TEST(Descriptor, FindGetSetRemove) {
  Descriptor d;
  EXPECT_TRUE(d.empty());
  d.add("ARCH", "x86");
  d.add("CORES", "8");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.has("ARCH"));
  EXPECT_EQ(d.get("ARCH"), "x86");
  EXPECT_EQ(d.get("MISSING"), "");
  EXPECT_EQ(d.get_or("MISSING", "dflt"), "dflt");
  EXPECT_EQ(d.get_int("CORES"), 8);
  EXPECT_FALSE(d.get_int("ARCH").has_value());

  d.set("ARCH", "gpu");  // replaces
  EXPECT_EQ(d.get("ARCH"), "gpu");
  EXPECT_EQ(d.size(), 2u);
  d.set("NEW", "v");  // appends
  EXPECT_EQ(d.size(), 3u);

  EXPECT_EQ(d.remove("ARCH"), 1u);
  EXPECT_FALSE(d.has("ARCH"));
  EXPECT_EQ(d.remove("ARCH"), 0u);
}

TEST(ProcessingUnit, HierarchyAndPaths) {
  ProcessingUnit master(PuKind::kMaster, "m0");
  ProcessingUnit* hybrid = master.add_child(PuKind::kHybrid, "h0");
  ProcessingUnit* worker = hybrid->add_child(PuKind::kWorker, "w0", 4);

  EXPECT_EQ(master.depth(), 0);
  EXPECT_EQ(hybrid->depth(), 1);
  EXPECT_EQ(worker->depth(), 2);
  EXPECT_EQ(worker->path(), "m0/h0/w0");
  EXPECT_EQ(worker->parent(), hybrid);
  EXPECT_EQ(hybrid->parent(), &master);
  EXPECT_EQ(master.parent(), nullptr);
  EXPECT_TRUE(worker->is_leaf());
  EXPECT_FALSE(master.is_leaf());
  EXPECT_EQ(worker->quantity(), 4);
}

TEST(ProcessingUnit, LogicGroups) {
  ProcessingUnit pu(PuKind::kWorker, "w");
  EXPECT_FALSE(pu.in_group("gpu"));
  pu.logic_groups().push_back("gpu");
  pu.logic_groups().push_back("all");
  EXPECT_TRUE(pu.in_group("gpu"));
  EXPECT_TRUE(pu.in_group("all"));
  EXPECT_FALSE(pu.in_group("cpu"));
}

TEST(ProcessingUnit, MemoryRegionLookup) {
  ProcessingUnit pu(PuKind::kMaster, "m");
  MemoryRegion mr;
  mr.id = "ram";
  pu.memory_regions().push_back(mr);
  EXPECT_NE(pu.find_memory_region("ram"), nullptr);
  EXPECT_EQ(pu.find_memory_region("vram"), nullptr);
}

TEST(Platform, AddMasterAndNamespaces) {
  Platform platform("test");
  platform.add_master("m0");
  platform.add_master("m1", 2);
  EXPECT_EQ(platform.masters().size(), 2u);
  EXPECT_EQ(platform.masters()[1]->quantity(), 2);

  platform.declare_namespace("ocl", "urn:a");
  platform.declare_namespace("ocl", "urn:b");  // replaces
  ASSERT_EQ(platform.namespaces().size(), 1u);
  EXPECT_EQ(platform.namespaces()[0].second, "urn:b");
}

TEST(Platform, CloneIsDeepAndIndependent) {
  Platform platform("orig");
  ProcessingUnit* m = platform.add_master("m0");
  m->descriptor().add(props::kArchitecture, "x86");
  ProcessingUnit* w = m->add_child(PuKind::kWorker, "w0", 8);
  w->logic_groups().push_back("cpu");
  Interconnect ic;
  ic.type = "PCIe";
  ic.from = "m0";
  ic.to = "w0";
  m->interconnects().push_back(ic);

  Platform copy = platform.clone();
  ASSERT_EQ(copy.masters().size(), 1u);
  const ProcessingUnit& cm = *copy.masters()[0];
  EXPECT_EQ(cm.descriptor().get(props::kArchitecture), "x86");
  ASSERT_EQ(cm.children().size(), 1u);
  EXPECT_EQ(cm.children()[0]->quantity(), 8);
  EXPECT_TRUE(cm.children()[0]->in_group("cpu"));
  EXPECT_EQ(cm.interconnects().size(), 1u);
  // Parent links must be rebuilt, not shared.
  EXPECT_EQ(cm.children()[0]->parent(), &cm);

  // Mutating the copy leaves the original untouched.
  copy.masters()[0]->descriptor().set(props::kArchitecture, "arm");
  EXPECT_EQ(platform.masters()[0]->descriptor().get(props::kArchitecture), "x86");
}

}  // namespace
}  // namespace pdl
