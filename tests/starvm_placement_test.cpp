// Placement classes (hierarchical HEFT): grouping, schedule equivalence
// with the exhaustive per-device scan, the node→spec transfer index, and
// thousand-device scalability of the simulation hot path.
#include <gtest/gtest.h>

#include <vector>

#include "discovery/presets.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace starvm {
namespace {

Codelet sim_codelet(std::string name, double flops,
                    DeviceKind kind = DeviceKind::kCpu) {
  Codelet c;
  c.name = std::move(name);
  c.impls.push_back(Implementation{kind, nullptr});
  c.flops = [flops](const std::vector<BufferView>&) { return flops; };
  return c;
}

/// Pure-sim config over a heterogeneous mix: 4 identical CPUs, 2 identical
/// but slower CPUs, 1 accelerator.
EngineConfig mixed_config(SchedulerKind scheduler, bool placement_classes) {
  EngineConfig config = EngineConfig::cpus(4, 10.0);
  for (int i = 0; i < 2; ++i) {
    DeviceSpec slow;
    slow.name = "slow" + std::to_string(i);
    slow.kind = DeviceKind::kCpu;
    slow.sustained_gflops = 2.0;
    config.devices.push_back(slow);
  }
  DeviceSpec accel;
  accel.name = "gpu";
  accel.kind = DeviceKind::kAccelerator;
  accel.sustained_gflops = 50.0;
  accel.link_bandwidth_gbs = 8.0;
  accel.link_latency_us = 5.0;
  config.devices.push_back(accel);
  config.scheduler = scheduler;
  config.mode = ExecutionMode::kPureSim;
  config.placement_classes = placement_classes;
  return config;
}

/// A small diamond-heavy DAG over partitioned vectors; returns the makespan.
double run_fixture(EngineConfig config) {
  Engine engine(std::move(config));
  std::vector<double> data(1024, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  auto blocks = engine.partition_vector(h, 8);
  Codelet big = sim_codelet("big", 4e8);
  Codelet small = sim_codelet("small", 5e7);
  for (DataHandle* b : blocks) {
    engine.submit(TaskDesc{&big, {{b, Access::kReadWrite}}});
    engine.submit(TaskDesc{&small, {{b, Access::kRead}}});
  }
  // A reduction-style tail serializing on the first block.
  for (int i = 0; i < 4; ++i) {
    engine.submit(TaskDesc{&small, {{blocks[0], Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  return engine.stats().makespan_seconds;
}

TEST(PlacementClasses, GroupIdenticalHostDevicesOnly) {
  Engine engine(mixed_config(SchedulerKind::kHeft, true));
  // 4 fast CPUs -> 1 class, 2 slow CPUs -> 1 class, accelerator singleton.
  EXPECT_EQ(engine.device_count(), 7u);
  EXPECT_EQ(engine.placement_class_count(), 3u);
}

TEST(PlacementClasses, DisabledTogglesBackToSingletonClasses) {
  Engine engine(mixed_config(SchedulerKind::kHeft, false));
  EXPECT_EQ(engine.placement_class_count(), engine.device_count());
}

TEST(PlacementClasses, HeftScheduleMatchesExhaustiveScan) {
  // Deterministic-mode equivalence: class-based placement must produce the
  // same-cost schedule as exhaustive per-device HEFT (identical members
  // make any tie-break difference cost-neutral).
  const double grouped = run_fixture(mixed_config(SchedulerKind::kHeft, true));
  const double exhaustive =
      run_fixture(mixed_config(SchedulerKind::kHeft, false));
  EXPECT_DOUBLE_EQ(grouped, exhaustive);
}

TEST(PlacementClasses, EagerAndWorkStealingUnaffectedByToggle) {
  for (SchedulerKind kind :
       {SchedulerKind::kEager, SchedulerKind::kWorkStealing}) {
    const double grouped = run_fixture(mixed_config(kind, true));
    const double exhaustive = run_fixture(mixed_config(kind, false));
    EXPECT_DOUBLE_EQ(grouped, exhaustive) << to_string(kind);
  }
}

TEST(PlacementClasses, ThousandWorkerPlatformSchedulesInOneClass) {
  auto bridged =
      engine_config_from_platform(pdl::discovery::manycore_platform(1088));
  ASSERT_TRUE(bridged.ok()) << bridged.error().str();
  EngineConfig config = std::move(bridged).value();
  config.mode = ExecutionMode::kPureSim;
  config.scheduler = SchedulerKind::kHeft;
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));
  ASSERT_EQ(engine.device_count(), 1088u);
  ASSERT_EQ(engine.placement_class_count(), 1u);

  std::vector<double> data(4096, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  auto blocks = engine.partition_vector(h, 256);
  Codelet c = sim_codelet("tile", 1.5e7);  // 0.01 s at 1.5 GFLOPS
  std::vector<TaskDesc> batch;
  for (DataHandle* b : blocks) {
    batch.push_back(TaskDesc{&c, {{b, Access::kReadWrite}}});
  }
  engine.submit_batch(std::move(batch));
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_completed, 256u);
  // 256 independent equal tasks on 1088 identical workers: every task runs
  // in the first wave, so the makespan is one task's modeled cost.
  EXPECT_NEAR(stats.makespan_seconds, 0.01, 1e-4);
}

TEST(TransferIndex, NodeSpecResolvesEveryAcceleratorNode) {
  Engine engine(mixed_config(SchedulerKind::kHeft, true));
  // Host node has no owning link spec; the accelerator's node does.
  EXPECT_EQ(engine.node_link_spec(kHostNode), nullptr);
  const DeviceSpec* spec = engine.node_link_spec(1);
  ASSERT_NE(spec, nullptr);
  EXPECT_DOUBLE_EQ(spec->link_bandwidth_gbs, 8.0);
  EXPECT_DOUBLE_EQ(spec->link_latency_us, 5.0);
  // Out-of-range nodes resolve to nothing instead of a default link.
  EXPECT_EQ(engine.node_link_spec(-1), nullptr);
  EXPECT_EQ(engine.node_link_spec(99), nullptr);
}

TEST(TransferIndex, NoDefaultLinkFallbackOnValidPlatforms) {
  // Exercise real transfers through the accelerator and check the
  // hard-coded 5.0 GB/s / 10 us fallback was never consulted.
  EngineConfig config = mixed_config(SchedulerKind::kHeft, true);
  Engine engine(std::move(config));
  std::vector<double> data(2048, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet on_gpu = sim_codelet("gpu_work", 1e8, DeviceKind::kAccelerator);
  Codelet on_cpu = sim_codelet("cpu_work", 1e8);
  engine.submit(TaskDesc{&on_gpu, {{h, Access::kReadWrite}}});
  engine.submit(TaskDesc{&on_cpu, {{h, Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.transfers, 0u);
  EXPECT_EQ(stats.link_spec_misses, 0u);
}

TEST(PlacementClasses, DecisionLogRecordsClassCandidates) {
  EngineConfig config = mixed_config(SchedulerKind::kHeft, true);
  config.record_decisions = true;
  Engine engine(std::move(config));
  std::vector<double> data(64, 1.0);
  DataHandle* h = engine.register_vector(data.data(), data.size());
  Codelet c = sim_codelet("t", 1e8);
  engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  ASSERT_EQ(stats.decisions.size(), 1u);
  // CPU-only codelet: the two CPU classes are candidates, the accelerator
  // class is not. Sizes echo the member counts.
  ASSERT_EQ(stats.decisions[0].candidates.size(), 2u);
  EXPECT_EQ(stats.decisions[0].candidates[0].class_size, 4);
  EXPECT_EQ(stats.decisions[0].candidates[1].class_size, 2);
  // The winner appears among the candidates under its own device id.
  bool chosen_listed = false;
  for (const auto& cand : stats.decisions[0].candidates) {
    if (cand.device == stats.decisions[0].chosen) chosen_listed = true;
  }
  EXPECT_TRUE(chosen_listed);
}

}  // namespace
}  // namespace starvm
