// Tests for the A7xx numerical-accuracy analysis (analysis/accuracy):
// forward error-bound propagation over task graphs, the four rules
// (A701 tolerance exceeded, A702 unmodeled write, A703 accumulation
// blow-up, A704 vacuous tolerance), the ACCURACY epsilon floor, and the
// graph_io accuracy directives (`tolerance`, `range`, `model=` et al.) —
// including the committed tolerance.graph / fp32-testbed.pdl.xml pair.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <string_view>

#include "analysis/accuracy.hpp"
#include "analysis/graph_io.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "analysis/sarif.hpp"
#include "pdl/parser.hpp"
#include "starvm/types.hpp"

namespace analysis {
namespace {

const pdl::Diagnostic* find_finding(const pdl::Diagnostics& diags,
                                    std::string_view rule,
                                    std::string_view message_part = "") {
  for (const auto& d : diags) {
    if (d.rule == rule &&
        (message_part.empty() ||
         d.message.find(message_part) != std::string::npos)) {
      return &d;
    }
  }
  return nullptr;
}

std::size_t count_rule(const pdl::Diagnostics& diags, std::string_view rule) {
  std::size_t n = 0;
  for (const auto& d : diags) n += d.rule == rule ? 1 : 0;
  return n;
}

starvm::TaskGraph parse(const std::string& text) {
  auto graph = parse_graph_text(text, "t.graph");
  EXPECT_TRUE(graph.ok()) << (graph.ok() ? "" : graph.error().str());
  return std::move(graph).value();
}

pdl::Diagnostics analyze(const starvm::TaskGraph& graph,
                         double epsilon_floor = 0.0) {
  pdl::Diagnostics diags;
  analyze_accuracy(graph, {}, diags, epsilon_floor);
  pdl::normalize(diags);
  return diags;
}

constexpr double kUlp = 0x1p-53;  // starvm::ErrorModel::kUlpDouble

// --- Propagation math ---------------------------------------------------------

TEST(AnalyzeAccuracy, SingleGemmBoundIsCoeffDepthMagnitudeEps) {
  // c = a*b with |a|,|b| <= 2, depth 100, model 2*k*|a||b|*ulp: the bound is
  // 2*100*4*2^-53, far under a 1e-10 tolerance. No findings at all.
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer b 1kB
buffer c 1kB
range a 2
range b 2
tolerance c 1e-10
task gemm read=a read=b write=c model=rounding coeff=2 depth=100
)");
  EXPECT_TRUE(analyze(g).empty());
}

TEST(AnalyzeAccuracy, A701_FiresWhenBoundExceedsTolerance) {
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer b 1kB
buffer c 1kB
range a 2
range b 2
tolerance c 1e-14
task gemm read=a read=b write=c model=rounding coeff=2 depth=1000
)");
  const pdl::Diagnostics diags = analyze(g);
  const pdl::Diagnostic* d =
      find_finding(diags, kToleranceExceeded, "exceeds its declared tolerance");
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  // Bound = 2 * 1000 * (2*2) * 2^-53 ~ 8.9e-13 > 1e-14; the finding points
  // at the tolerance declaration and names the buffer.
  EXPECT_NE(d->message.find("8.88e-13"), std::string::npos) << d->message;
  EXPECT_EQ(d->loc.file, "t.graph");
  EXPECT_EQ(d->loc.line, 6);
  EXPECT_EQ(d->where, "c");
}

TEST(AnalyzeAccuracy, ErrorAmplifiesThroughDownstreamMagnitudes) {
  // e1 = a*b (depth 10), then out = e1*c (depth 10, |c| <= 3): the first
  // stage's error is amplified by depth*|c| = 30 in stage two, plus stage
  // two's own term. Checked against the closed form below.
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer b 1kB
buffer c 1kB
buffer e1 1kB
buffer out 1kB
range a 2
range b 2
range c 3
tolerance out 1e-30
task s1 read=a read=b write=e1 model=rounding coeff=1 depth=10
task s2 read=e1 read=c write=out model=rounding coeff=1 depth=10
)");
  const pdl::Diagnostics diags = analyze(g);
  const pdl::Diagnostic* d = find_finding(diags, kToleranceExceeded);
  ASSERT_NE(d, nullptr) << render_text(diags);
  const double e1_err = 10.0 * 4.0 * kUlp;        // own term of s1
  const double e1_mag = 10.0 * 4.0;               // depth * |a||b|
  const double amplified = e1_err * 10.0 * 3.0;   // E_e1 * depth * |c|
  const double own2 = 10.0 * e1_mag * 3.0 * kUlp; // s2's own rounding
  char expect[64];
  std::snprintf(expect, sizeof(expect), "%.3g", amplified + own2);
  EXPECT_NE(d->message.find(expect), std::string::npos)
      << d->message << " want " << expect;
}

TEST(AnalyzeAccuracy, ExactModelsPropagateZeroEvenWithoutRanges) {
  // A copy chain of exact tasks introduces no error: the tolerance holds
  // even though no range was declared anywhere (zero error needs no
  // magnitude to stay zero).
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer b 1kB
buffer c 1kB
tolerance c 1e-30
task gen write=a model=exact
task cp1 read=a write=b model=exact
task cp2 read=b write=c model=exact
)");
  EXPECT_TRUE(analyze(g).empty()) << render_text(analyze(g));
}

TEST(AnalyzeAccuracy, ReadWriteAccumulatesWriteReplaces) {
  // Ten rw= steps accumulate ten step terms; a final write= replaces the
  // bound with just the last stage's contribution, so the tolerance that
  // the accumulated bound violates is satisfied after a rewrite.
  const std::string steps = R"(buffer x 1kB
buffer acc 1kB
range x 2
tolerance acc 5e-13
task s0 rw=acc read=x model=rounding depth=1000
task s1 rw=acc read=x model=rounding depth=1000
task s2 rw=acc read=x model=rounding depth=1000
task s3 rw=acc read=x model=rounding depth=1000
task s4 rw=acc read=x model=rounding depth=1000
)";
  // Five terms of 1000*2*2^-53 ~ 2.2e-13 each: 1.1e-12 > 5e-13 -> A701.
  const pdl::Diagnostics accumulated = analyze(parse(steps));
  EXPECT_EQ(count_rule(accumulated, kToleranceExceeded), 1u)
      << render_text(accumulated);
  // One write= step replacing the contents stays under the tolerance.
  const pdl::Diagnostics replaced = analyze(parse(
      steps + "task fin read=x write=acc model=rounding depth=1000\n"));
  EXPECT_EQ(count_rule(replaced, kToleranceExceeded), 0u)
      << render_text(replaced);
}

// --- A702: unmodeled writes ---------------------------------------------------

TEST(AnalyzeAccuracy, A702_DirectUnmodeledWrite) {
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer c 1kB
range a 2
tolerance c 1e-10
task mystery read=a write=c
)");
  const pdl::Diagnostics diags = analyze(g);
  const pdl::Diagnostic* d =
      find_finding(diags, kUnmodeledWrite, "no declared error model");
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
  EXPECT_EQ(d->where, "mystery");
  EXPECT_EQ(d->loc.line, 5);  // points at the task, not the tolerance
  EXPECT_EQ(count_rule(diags, kToleranceExceeded), 0u);
  EXPECT_EQ(count_rule(diags, kVacuousTolerance), 0u);
}

TEST(AnalyzeAccuracy, A702_TransitivePoisonNamesFirstUnmodeledTask) {
  // The unmodeled task writes an intermediate; a modeled task carries the
  // poison into the tolerance buffer. The finding still names `mystery`.
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer mid 1kB
buffer c 1kB
range a 2
tolerance c 1e-10
task mystery read=a write=mid
task gemm read=mid write=c model=rounding depth=10
)");
  const pdl::Diagnostics diags = analyze(g);
  const pdl::Diagnostic* d = find_finding(diags, kUnmodeledWrite);
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->where, "mystery");
}

TEST(AnalyzeAccuracy, UnmodeledWriteOffToleranceBuffersIsSilent) {
  // No tolerance anywhere: unmodeled tasks are none of our business.
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer c 1kB
task mystery read=a write=c
)");
  EXPECT_TRUE(analyze(g).empty());
}

// --- A703: accumulation blow-up -----------------------------------------------

TEST(AnalyzeAccuracy, A703_ChainOfEqualStepsWithPath) {
  const starvm::TaskGraph g = parse(R"(buffer x 1kB
buffer acc 1kB
range x 2
tolerance acc 1e-3
task s0 rw=acc read=x model=rounding depth=1000
task s1 rw=acc read=x model=rounding depth=1000
task s2 rw=acc read=x model=rounding depth=1000
task s3 rw=acc read=x model=rounding depth=1000
task s4 rw=acc read=x model=rounding depth=1000
task s5 rw=acc read=x model=rounding depth=1000
task s6 rw=acc read=x model=rounding depth=1000
task s7 rw=acc read=x model=rounding depth=1000
task s8 rw=acc read=x model=rounding depth=1000
task s9 rw=acc read=x model=rounding depth=1000
)");
  const pdl::Diagnostics diags = analyze(g);
  // Tolerance 1e-3 is generous (bound ~2.2e-12): only the chain fires.
  EXPECT_EQ(count_rule(diags, kToleranceExceeded), 0u) << render_text(diags);
  const pdl::Diagnostic* d =
      find_finding(diags, kAccumulationBlowup, "RAW chain of 10 rounding steps");
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
  // The chain rides in `where` and becomes the SARIF logical location.
  EXPECT_EQ(d->where, "s0->s1->s2->s3->s4->s5->s6->s7->s8->s9");
  const std::string sarif = render_sarif(diags);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\":\"s0->s1->s2->s3->s4->s5->s6->"
                       "s7->s8->s9\""),
            std::string::npos)
      << sarif;
}

TEST(AnalyzeAccuracy, A703_SilentWhenOneStepDominatesOrChainShort) {
  // Three equal steps: below kChainMinSteps.
  const pdl::Diagnostics short_chain = analyze(parse(R"(buffer x 1kB
buffer acc 1kB
range x 2
tolerance acc 1
task s0 rw=acc read=x model=rounding depth=1000
task s1 rw=acc read=x model=rounding depth=1000
task s2 rw=acc read=x model=rounding depth=1000
)"));
  EXPECT_EQ(count_rule(short_chain, kAccumulationBlowup), 0u);
  // Five steps where one dominates: sum < 8x max.
  const pdl::Diagnostics dominated = analyze(parse(R"(buffer x 1kB
buffer acc 1kB
range x 2
tolerance acc 1
task heavy rw=acc read=x model=rounding depth=1000000
task s1 rw=acc read=x model=rounding depth=10
task s2 rw=acc read=x model=rounding depth=10
task s3 rw=acc read=x model=rounding depth=10
task s4 rw=acc read=x model=rounding depth=10
)"));
  EXPECT_EQ(count_rule(dominated, kAccumulationBlowup), 0u)
      << render_text(dominated);
}

// --- A704: vacuous tolerance --------------------------------------------------

TEST(AnalyzeAccuracy, A704_ToleranceWithoutRangeIsVacuous) {
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer c 1kB
tolerance c 1e-10
task gemm read=a write=c model=rounding depth=10
)");
  const pdl::Diagnostics diags = analyze(g);
  const pdl::Diagnostic* d =
      find_finding(diags, kVacuousTolerance, "no `range` reaches it");
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->severity, pdl::Severity::kInfo);
  EXPECT_EQ(d->where, "c");
  // A701 must NOT fire off a vacuous bound.
  EXPECT_EQ(count_rule(diags, kToleranceExceeded), 0u);
}

// --- Epsilon floor ------------------------------------------------------------

TEST(AnalyzeAccuracy, EpsilonFloorRaisesRoundingBounds) {
  const std::string text = R"(buffer a 1kB
buffer c 1kB
range a 2
tolerance c 1e-9
task gemm read=a write=c model=rounding depth=1000
)";
  // fp64 bound 1000*2*2^-53 ~ 2.2e-13 passes a 1e-9 tolerance...
  EXPECT_EQ(count_rule(analyze(parse(text)), kToleranceExceeded), 0u);
  // ...but flooring eps at 2^-24 (an fp32 PU in the platform) breaks it.
  const pdl::Diagnostics floored = analyze(parse(text), 0x1p-24);
  EXPECT_EQ(count_rule(floored, kToleranceExceeded), 1u)
      << render_text(floored);
}

TEST(AnalyzeAccuracy, EpsilonFloorComesFromPlatformAccuracyProperty) {
  auto platform = pdl::parse_platform(R"(<?xml version="1.0"?>
<Platform name="mixed" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
      <Property fixed="true"><name>ACCURACY</name><value>1.1102230246251565e-16</value></Property>
    </PUDescriptor>
    <Worker id="fp32" quantity="1">
      <PUDescriptor>
        <Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property>
        <Property fixed="true"><name>ACCURACY</name><value>5.9604644775390625e-8</value></Property>
      </PUDescriptor>
    </Worker>
  </Master>
</Platform>)");
  ASSERT_TRUE(platform.ok()) << platform.error().str();
  // The floor is the loosest PU: a dynamic scheduler may place any task
  // on the fp32 unit.
  EXPECT_DOUBLE_EQ(accuracy_epsilon_floor(platform.value()), 0x1p-24);

  auto no_accuracy = pdl::parse_platform(R"(<?xml version="1.0"?>
<Platform name="plain" version="1.0">
  <Master id="m" quantity="1">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property>
    </PUDescriptor>
  </Master>
</Platform>)");
  ASSERT_TRUE(no_accuracy.ok());
  EXPECT_EQ(accuracy_epsilon_floor(no_accuracy.value()), 0.0);
}

// --- Rule options and the committed fixture pair ------------------------------

TEST(AnalyzeAccuracy, RespectsRuleOptionsLikeOtherFamilies) {
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer c 1kB
range a 2
tolerance c 1e-20
task gemm read=a write=c model=rounding depth=1000
)");
  AnalysisOptions off;
  off.disabled.insert(kToleranceExceeded);
  pdl::Diagnostics diags;
  analyze_accuracy(g, off, diags);
  EXPECT_EQ(count_rule(diags, kToleranceExceeded), 0u);

  AnalysisOptions demote;
  demote.severity_overrides[kToleranceExceeded] = pdl::Severity::kInfo;
  pdl::Diagnostics diags2;
  analyze_accuracy(g, demote, diags2);
  const pdl::Diagnostic* d = find_finding(diags2, kToleranceExceeded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kInfo);
}

TEST(AnalyzeAccuracy, CommittedFixturePairFiresA701AndA703) {
  auto platform = pdl::parse_platform_file(
      std::string(PDL_SOURCE_DIR) + "/tests/fixtures/fp32-testbed.pdl.xml");
  ASSERT_TRUE(platform.ok()) << platform.error().str();
  auto graph = load_graph_file(std::string(PDL_SOURCE_DIR) +
                               "/tests/fixtures/tolerance.graph");
  ASSERT_TRUE(graph.ok()) << graph.error().str();
  pdl::Diagnostics diags;
  analyze_accuracy(graph.value(), {}, diags,
                   accuracy_epsilon_floor(platform.value()));
  pdl::normalize(diags);
  EXPECT_EQ(count_rule(diags, kToleranceExceeded), 1u) << render_text(diags);
  EXPECT_EQ(count_rule(diags, kAccumulationBlowup), 1u) << render_text(diags);
  EXPECT_EQ(count_rule(diags, kUnmodeledWrite), 0u) << render_text(diags);
  EXPECT_EQ(count_rule(diags, kVacuousTolerance), 0u) << render_text(diags);
}

// --- Rule catalog additions ---------------------------------------------------

TEST(RuleCatalogA7xx, CatalogAndSuggestions) {
  ASSERT_NE(find_rule("A701"), nullptr);
  ASSERT_NE(find_rule("A701-tolerance-exceeded"), nullptr);
  EXPECT_EQ(find_rule("A701")->default_severity, pdl::Severity::kError);
  EXPECT_EQ(find_rule("A702")->default_severity, pdl::Severity::kWarning);
  EXPECT_EQ(find_rule("A703")->default_severity, pdl::Severity::kWarning);
  EXPECT_EQ(find_rule("A704")->default_severity, pdl::Severity::kInfo);
  // Typo'd --rule ids suggest the A7xx family like every other family.
  EXPECT_EQ(suggest_rule("A710"), "A701");
  EXPECT_EQ(suggest_rule("A704-vacuous-tolerence"), "A704-vacuous-tolerance");
  EXPECT_EQ(suggest_rule("A702-unmodeled-wirte"), "A702-unmodeled-write");
}

// --- graph_io accuracy directives ---------------------------------------------

TEST(GraphIoAccuracy, ParsesToleranceRangeAndModels) {
  const starvm::TaskGraph g = parse(R"(buffer a 1kB
buffer c 1kB
range a 4
tolerance c 1e-6
task t0 read=a write=c model=rounding32 coeff=3 depth=64
task t1 read=a write=c model=exact
task t2 read=a write=c model=rounding eps=1e-7
)");
  ASSERT_EQ(g.buffers().size(), 2u);
  EXPECT_TRUE(g.buffers()[0].has_range);
  EXPECT_DOUBLE_EQ(g.buffers()[0].range, 4.0);
  EXPECT_FALSE(g.buffers()[0].has_tolerance);
  EXPECT_TRUE(g.buffers()[1].has_tolerance);
  EXPECT_DOUBLE_EQ(g.buffers()[1].tolerance, 1e-6);
  EXPECT_EQ(g.buffers()[1].tolerance_loc.line, 4);
  ASSERT_EQ(g.tasks().size(), 3u);
  EXPECT_EQ(g.tasks()[0].error_model.kind,
            starvm::ErrorModel::Kind::kRounding);
  EXPECT_DOUBLE_EQ(g.tasks()[0].error_model.coefficient, 3.0);
  EXPECT_DOUBLE_EQ(g.tasks()[0].error_model.epsilon,
                   starvm::ErrorModel::kUlpSingle);
  EXPECT_DOUBLE_EQ(g.tasks()[0].depth, 64.0);
  EXPECT_EQ(g.tasks()[1].error_model.kind, starvm::ErrorModel::Kind::kExact);
  EXPECT_DOUBLE_EQ(g.tasks()[2].error_model.epsilon, 1e-7);
}

TEST(GraphIoAccuracy, RejectsMalformedDirectivesWithFileLine) {
  // Duplicate tolerance / range.
  const auto dup_tol = parse_graph_text(
      "buffer c 1\ntolerance c 1e-3\ntolerance c 1e-3\n", "f.graph");
  ASSERT_FALSE(dup_tol.ok());
  EXPECT_EQ(dup_tol.error().where, "f.graph:3");
  EXPECT_NE(dup_tol.error().message.find("duplicate tolerance"),
            std::string::npos);
  const auto dup_range =
      parse_graph_text("buffer c 1\nrange c 2\nrange c 2\n", "f.graph");
  ASSERT_FALSE(dup_range.ok());
  EXPECT_EQ(dup_range.error().where, "f.graph:3");

  // Unknown buffer: declaration order matters.
  const auto unknown = parse_graph_text("tolerance c 1e-3\n", "f.graph");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().where, "f.graph:1");
  EXPECT_NE(unknown.error().message.find("unknown buffer 'c'"),
            std::string::npos);

  // Non-finite / non-positive values (strict util::parse_double).
  EXPECT_FALSE(parse_graph_text("buffer c 1\ntolerance c nan\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer c 1\ntolerance c inf\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer c 1\ntolerance c 0\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer c 1\nrange c -2\n").ok());
  EXPECT_FALSE(parse_graph_text("buffer c 1\nrange c 2x\n").ok());

  // Trailing tokens.
  const auto trailing =
      parse_graph_text("buffer c 1\ntolerance c 1e-3 extra\n", "f.graph");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.error().message.find("trailing token 'extra'"),
            std::string::npos);

  // Task model options.
  EXPECT_FALSE(parse_graph_text("task t model=float\n").ok());
  EXPECT_FALSE(parse_graph_text("task t model=exact model=exact\n").ok());
  EXPECT_FALSE(parse_graph_text("task t depth=nan\n").ok());
  EXPECT_FALSE(parse_graph_text("task t coeff=0\n").ok());
  // coeff=/eps= without a rounding model are meaningless, not ignored.
  const auto coeff_only = parse_graph_text("task t coeff=2\n", "f.graph");
  ASSERT_FALSE(coeff_only.ok());
  EXPECT_NE(coeff_only.error().message.find(
                "coeff=/eps= need model=rounding or model=rounding32"),
            std::string::npos);
  EXPECT_FALSE(parse_graph_text("task t model=exact eps=1e-8\n").ok());
}

}  // namespace
}  // namespace analysis
