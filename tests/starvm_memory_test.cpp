// Tests of the bounded accelerator-memory model: LRU replica eviction and
// write-back accounting.
#include <gtest/gtest.h>

#include "discovery/presets.hpp"
#include "starvm/bridge.hpp"
#include "starvm/engine.hpp"

namespace starvm {
namespace {

/// One accelerator whose memory fits exactly `capacity_buffers` of the
/// test's 1 KiB buffers, plus a CPU for host-side work.
Engine capacity_engine(std::size_t capacity_buffers) {
  EngineConfig config;
  DeviceSpec accel;
  accel.name = "gpu";
  accel.kind = DeviceKind::kAccelerator;
  accel.memory_bytes = capacity_buffers * 1024;
  config.devices.push_back(accel);
  config.scheduler = SchedulerKind::kEager;
  return Engine(std::move(config));
}

constexpr std::size_t kDoubles = 128;  // 1 KiB per buffer

Codelet reader_codelet() {
  Codelet c;
  c.name = "read";
  c.impls.push_back({DeviceKind::kAccelerator, [](const ExecContext&) {}});
  return c;
}

TEST(MemoryModel, ReplicasFitWithinCapacityNoEviction) {
  Engine engine = capacity_engine(4);
  Codelet reader = reader_codelet();
  std::vector<std::vector<double>> buffers(3, std::vector<double>(kDoubles));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), buf.size());
    engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.transfers, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(MemoryModel, LruEvictionWhenOverCapacity) {
  Engine engine = capacity_engine(2);
  Codelet reader = reader_codelet();
  std::vector<std::vector<double>> buffers(4, std::vector<double>(kDoubles));
  std::vector<DataHandle*> handles;
  for (auto& buf : buffers) {
    handles.push_back(engine.register_vector(buf.data(), buf.size()));
  }
  // Stream 4 reads through a 2-buffer device: 2 evictions.
  for (DataHandle* h : handles) {
    engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
    EXPECT_TRUE(engine.wait_all().ok());  // serialize for deterministic LRU order
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.transfers, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  // Clean replicas (host still valid): no write-back traffic.
  EXPECT_EQ(stats.writeback_bytes, 0u);
  // The two oldest replicas are gone; the newest two remain (node id 1).
  EXPECT_FALSE(handles[0]->valid_on(1));
  EXPECT_FALSE(handles[1]->valid_on(1));
  EXPECT_TRUE(handles[2]->valid_on(1));
  EXPECT_TRUE(handles[3]->valid_on(1));
}

TEST(MemoryModel, ReaccessRefreshesLruOrder) {
  Engine engine = capacity_engine(2);
  Codelet reader = reader_codelet();
  std::vector<std::vector<double>> buffers(3, std::vector<double>(kDoubles));
  std::vector<DataHandle*> handles;
  for (auto& buf : buffers) {
    handles.push_back(engine.register_vector(buf.data(), buf.size()));
  }
  const auto read = [&](DataHandle* h) {
    engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
    EXPECT_TRUE(engine.wait_all().ok());
  };
  read(handles[0]);
  read(handles[1]);
  read(handles[0]);  // refresh 0: now 1 is the LRU victim
  read(handles[2]);  // evicts 1, not 0
  EXPECT_TRUE(handles[0]->valid_on(1));
  EXPECT_FALSE(handles[1]->valid_on(1));
  EXPECT_TRUE(handles[2]->valid_on(1));
}

TEST(MemoryModel, EvictingSoleReplicaWritesBack) {
  Engine engine = capacity_engine(1);
  Codelet writer;
  writer.name = "write";
  writer.impls.push_back({DeviceKind::kAccelerator, [](const ExecContext&) {}});

  std::vector<double> a(kDoubles), b(kDoubles);
  DataHandle* ha = engine.register_vector(a.data(), a.size());
  DataHandle* hb = engine.register_vector(b.data(), b.size());

  // Write `a` on the device: device holds the sole replica.
  engine.submit(TaskDesc{&writer, {{ha, Access::kWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_FALSE(ha->valid_on(kHostNode));

  // Touching `b` evicts `a`, which must be written back to the host first.
  engine.submit(TaskDesc{&writer, {{hb, Access::kWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.writeback_bytes, kDoubles * 8);
  EXPECT_TRUE(ha->valid_on(kHostNode));  // preserved by the write-back
  EXPECT_FALSE(ha->valid_on(1));
}

TEST(MemoryModel, PinnedBuffersAreNeverEvicted) {
  // Capacity 1, but a task touching two buffers must hold both: the node
  // over-commits instead of evicting the task's own data.
  Engine engine = capacity_engine(1);
  Codelet two;
  two.name = "two";
  two.impls.push_back({DeviceKind::kAccelerator, [](const ExecContext&) {}});
  std::vector<double> a(kDoubles), b(kDoubles);
  DataHandle* ha = engine.register_vector(a.data(), a.size());
  DataHandle* hb = engine.register_vector(b.data(), b.size());
  engine.submit(
      TaskDesc{&two, {{ha, Access::kRead}, {hb, Access::kReadWrite}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_TRUE(ha->valid_on(1));
  EXPECT_TRUE(hb->valid_on(1));
}

TEST(MemoryModel, UnlimitedByDefault) {
  EngineConfig config;
  DeviceSpec accel;
  accel.kind = DeviceKind::kAccelerator;  // memory_bytes = 0 -> unlimited
  config.devices.push_back(accel);
  Engine engine(std::move(config));
  Codelet reader = reader_codelet();
  std::vector<std::vector<double>> buffers(64, std::vector<double>(kDoubles));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), buf.size());
    engine.submit(TaskDesc{&reader, {{h, Access::kRead}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().evictions, 0u);
}

// --- partition geometry --------------------------------------------------------
// partition_* must return exactly the requested block count even when the
// data is too small; surplus blocks are empty, never missing (callers index
// blocks[r * cols + c] unconditionally).

TEST(MemoryModel, PartitionVectorPadsWithEmptyBlocks) {
  Engine engine = capacity_engine(4);
  std::vector<double> v(5);
  DataHandle* h = engine.register_vector(v.data(), v.size());
  auto blocks = engine.partition_vector(h, 8);
  ASSERT_EQ(blocks.size(), 8u);
  std::size_t total = 0;
  for (const DataHandle* b : blocks) total += b->cols();  // element count
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(blocks.back()->rows(), 0u);
  EXPECT_EQ(blocks.back()->bytes(), 0u);
}

TEST(MemoryModel, PartitionTilesPadsWithEmptyBlocks) {
  Engine engine = capacity_engine(4);
  std::vector<double> m(2 * 2);
  DataHandle* h = engine.register_matrix(m.data(), 2, 2);
  auto tiles = engine.partition_tiles(h, 3, 3);
  ASSERT_EQ(tiles.size(), 9u);  // full 3x3 grid, not a ragged subset
  std::size_t cells = 0;
  for (const DataHandle* t : tiles) cells += t->rows() * t->cols();
  EXPECT_EQ(cells, 4u);
  // Row 2 and column 2 of the grid are empty.
  for (int r = 0; r < 3; ++r) EXPECT_EQ(tiles[r * 3 + 2]->cols(), 0u);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(tiles[2 * 3 + c]->rows(), 0u);
}

TEST(MemoryModel, BridgeReadsCapacityFromPdl) {
  auto config = starvm::engine_config_from_platform(
      pdl::discovery::paper_platform_starpu_2gpu());
  ASSERT_TRUE(config.ok());
  for (const auto& d : config.value().devices) {
    if (d.name == "gpu1") {
      // GTX480: GLOBAL_MEM_SIZE 1572864 kB.
      EXPECT_EQ(d.memory_bytes, 1572864ull * 1024);
    }
    if (d.name == "gpu2") {
      EXPECT_EQ(d.memory_bytes, 1048576ull * 1024);
    }
  }
}

}  // namespace
}  // namespace starvm
