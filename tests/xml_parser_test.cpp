#include <gtest/gtest.h>

#include "xml/dom.hpp"
#include "xml/parser.hpp"

namespace pdl::xml {
namespace {

TEST(XmlParser, ParsesMinimalDocument) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.error().str();
  ASSERT_NE(doc.value().root(), nullptr);
  EXPECT_EQ(doc.value().root()->name(), "root");
  EXPECT_TRUE(doc.value().root()->children().empty());
}

TEST(XmlParser, ParsesDeclaration) {
  auto doc = parse("<?xml version=\"1.1\" encoding=\"ISO-8859-1\"?><r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().xml_version(), "1.1");
  EXPECT_EQ(doc.value().encoding(), "ISO-8859-1");
}

TEST(XmlParser, ParsesNestedElementsInOrder) {
  auto doc = parse("<a><b/><c><d/></c><b/></a>");
  ASSERT_TRUE(doc.ok());
  const Element* a = doc.value().root();
  const auto children = a->child_elements();
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0]->name(), "b");
  EXPECT_EQ(children[1]->name(), "c");
  EXPECT_EQ(children[2]->name(), "b");
  ASSERT_NE(children[1]->first_child("d"), nullptr);
}

TEST(XmlParser, ParsesAttributesWithBothQuoteStyles) {
  auto doc = parse(R"(<e a="1" b='two' c=""/>)");
  ASSERT_TRUE(doc.ok());
  const Element* e = doc.value().root();
  EXPECT_EQ(e->attribute("a"), "1");
  EXPECT_EQ(e->attribute("b"), "two");
  EXPECT_EQ(e->attribute("c"), "");
  EXPECT_FALSE(e->attribute("missing").has_value());
  EXPECT_EQ(e->attribute_or("missing", "dflt"), "dflt");
}

TEST(XmlParser, RejectsDuplicateAttributes) {
  auto doc = parse(R"(<e a="1" a="2"/>)");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("duplicate attribute"), std::string::npos);
}

TEST(XmlParser, DecodesTextEntities) {
  auto doc = parse("<e>a &lt;&amp;&gt; b &quot;q&quot; &apos;s&apos;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->text_content(), "a <&> b \"q\" 's'");
}

TEST(XmlParser, DecodesNumericCharacterReferences) {
  auto doc = parse("<e>&#65;&#x42;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->text_content(), "AB");
}

TEST(XmlParser, DecodesUtf8CharacterReference) {
  auto doc = parse("<e>&#xE9;</e>");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->text_content(), "\xC3\xA9");
}

TEST(XmlParser, RejectsUnknownEntity) {
  auto doc = parse("<e>&unknown;</e>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("unknown entity"), std::string::npos);
}

TEST(XmlParser, ParsesCData) {
  auto doc = parse("<e><![CDATA[<not-parsed> & raw]]></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->text_content(), "<not-parsed> & raw");
}

TEST(XmlParser, SkipsCommentsByDefault) {
  auto doc = parse("<e><!-- hidden --><f/></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->children().size(), 1u);
}

TEST(XmlParser, KeepsCommentsWhenAsked) {
  ParseOptions options;
  options.keep_comments = true;
  auto doc = parse("<e><!-- hidden --></e>", options);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().root()->children().size(), 1u);
  EXPECT_EQ(doc.value().root()->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(doc.value().root()->children()[0]->text(), " hidden ");
}

TEST(XmlParser, SkipsDoctypeAndProcessingInstructions) {
  auto doc = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE root [ <!ENTITY x \"y\"> ]>\n"
      "<?pi data?>\n"
      "<root><?inner pi?></root>");
  ASSERT_TRUE(doc.ok()) << doc.error().str();
  EXPECT_EQ(doc.value().root()->name(), "root");
}

TEST(XmlParser, ReportsMismatchedTagsWithLocation) {
  auto doc = parse("<a>\n  <b>\n  </c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("mismatched end tag"), std::string::npos);
  EXPECT_NE(doc.error().where.find(":3:"), std::string::npos);  // line 3
}

TEST(XmlParser, ReportsUnterminatedElement) {
  auto doc = parse("<a><b></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("unterminated"), std::string::npos);
}

TEST(XmlParser, RejectsContentAfterRoot) {
  auto doc = parse("<a/><b/>");
  ASSERT_FALSE(doc.ok());
}

TEST(XmlParser, RejectsEmptyInput) {
  auto doc = parse("   ");
  ASSERT_FALSE(doc.ok());
}

TEST(XmlParser, RejectsAttributeValueWithRawLt) {
  auto doc = parse("<e a=\"x<y\"/>");
  ASSERT_FALSE(doc.ok());
}

TEST(XmlParser, WhitespaceTextDroppedByDefaultKeptOnRequest) {
  auto plain = parse("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().root()->children().size(), 1u);

  ParseOptions options;
  options.keep_whitespace_text = true;
  auto kept = parse("<a>\n  <b/>\n</a>", options);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value().root()->children().size(), 3u);
}

TEST(XmlParser, NamespaceResolutionWalksAncestors) {
  auto doc = parse(
      R"(<root xmlns:ocl="urn:ocl" xmlns="urn:default">
           <child><ocl:name/></child>
         </root>)");
  ASSERT_TRUE(doc.ok());
  const Element* child = doc.value().root()->first_child("child");
  ASSERT_NE(child, nullptr);
  const Element* name = child->first_child("ocl:name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->prefix(), "ocl");
  EXPECT_EQ(name->local_name(), "name");
  EXPECT_EQ(name->resolve_namespace("ocl"), "urn:ocl");
  EXPECT_EQ(name->resolve_namespace(""), "urn:default");
  EXPECT_FALSE(name->resolve_namespace("unbound").has_value());
}

TEST(XmlParser, TracksSourcePositions) {
  auto doc = parse("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->pos().line, 1);
  const Element* b = doc.value().root()->first_child("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->pos().line, 2);
  EXPECT_EQ(b->pos().column, 3);
}

TEST(XmlParser, ParsesMixedContent) {
  auto doc = parse("<e>before<f/>after</e>");
  ASSERT_TRUE(doc.ok());
  const Element* e = doc.value().root();
  ASSERT_EQ(e->children().size(), 3u);
  EXPECT_EQ(e->children()[0]->kind(), NodeKind::kText);
  EXPECT_EQ(e->children()[0]->text(), "before");
  EXPECT_TRUE(e->children()[1]->is_element());
  EXPECT_EQ(e->children()[2]->text(), "after");
}

TEST(XmlParser, DecodeEntitiesStandalone) {
  EXPECT_EQ(decode_entities("x &amp; y").value(), "x & y");
  EXPECT_FALSE(decode_entities("bad &").ok());
  EXPECT_FALSE(decode_entities("&#;").ok());
  EXPECT_FALSE(decode_entities("&#xZZ;").ok());
  EXPECT_FALSE(decode_entities("&#x110000;").ok());  // beyond Unicode range
}

TEST(XmlParser, DecodeEntitiesRejectsInvalidScalarValues) {
  // NUL and UTF-16 surrogates are not XML characters even when in-range
  // numerically; accepting them produces ill-formed UTF-8 downstream.
  EXPECT_FALSE(decode_entities("&#0;").ok());
  EXPECT_FALSE(decode_entities("&#x0;").ok());
  EXPECT_FALSE(decode_entities("&#xD800;").ok());   // first high surrogate
  EXPECT_FALSE(decode_entities("&#xDFFF;").ok());   // last low surrogate
  EXPECT_FALSE(decode_entities("&#55296;").ok());   // 0xD800 in decimal
  // Neighbours of the surrogate block stay valid.
  EXPECT_TRUE(decode_entities("&#xD7FF;").ok());
  EXPECT_TRUE(decode_entities("&#xE000;").ok());
  EXPECT_EQ(decode_entities("&#x10FFFF;").value(), "\xF4\x8F\xBF\xBF");
}

TEST(XmlParser, ParseFileErrorsOnMissingFile) {
  auto doc = parse_file("/does/not/exist.xml");
  ASSERT_FALSE(doc.ok());
}

// Property-style sweep: documents of increasing width parse and preserve
// child counts.
class XmlWidthTest : public testing::TestWithParam<int> {};

TEST_P(XmlWidthTest, WideDocumentsRoundTripChildCount) {
  const int n = GetParam();
  std::string text = "<root>";
  for (int i = 0; i < n; ++i) {
    text += "<item id=\"" + std::to_string(i) + "\"/>";
  }
  text += "</root>";
  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->child_elements("item").size(),
            static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Widths, XmlWidthTest, testing::Values(0, 1, 17, 256, 2048));

// Deep nesting parses without issue.
class XmlDepthTest : public testing::TestWithParam<int> {};

TEST_P(XmlDepthTest, DeepDocumentsParse) {
  const int depth = GetParam();
  std::string text;
  for (int i = 0; i < depth; ++i) text += "<n>";
  text += "<leaf/>";
  for (int i = 0; i < depth; ++i) text += "</n>";
  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  const Element* e = doc.value().root();
  for (int i = 1; i < depth; ++i) {
    e = e->first_child("n");
    ASSERT_NE(e, nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, XmlDepthTest, testing::Values(1, 8, 64, 512));

}  // namespace
}  // namespace pdl::xml
