#include <gtest/gtest.h>

#include <random>

#include "kernels/cholesky.hpp"
#include "kernels/matrix.hpp"
#include "solvers/tiled_cholesky.hpp"
#include "starvm/engine.hpp"

namespace solvers {
namespace {

/// SPD matrix: M·Mᵀ + n·I with random M.
kernels::Matrix spd_matrix(std::size_t n, unsigned seed) {
  kernels::Matrix m(n, n);
  m.fill_random(seed);
  kernels::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = i == j ? static_cast<double>(n) : 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += m.at(i, k) * m.at(j, k);
      a.at(i, j) = sum;
    }
  }
  return a;
}

// --- tile kernels -------------------------------------------------------------

TEST(CholeskyKernels, TrsmSimdMatchesScalarAcrossFringeShapes) {
  // Sweep m around the 4-row quartet (fringe rows 0..3) and odd n.
  for (std::size_t m = 1; m <= 11; ++m) {
    for (std::size_t n : {1u, 3u, 5u, 8u}) {
      kernels::Matrix a = spd_matrix(n, static_cast<unsigned>(m * 16 + n));
      ASSERT_TRUE(kernels::potrf(n, a.data(), n));
      kernels::Matrix b_ref(m, n), b_simd(m, n);
      b_ref.fill_random(static_cast<unsigned>(m + n));
      b_simd = b_ref;
      kernels::trsm_rlt(m, n, a.data(), n, b_ref.data(), n);
      kernels::trsm_rlt_simd(m, n, a.data(), n, b_simd.data(), n);
      for (std::size_t i = 0; i < m * n; ++i) {
        // Reciprocal-multiply vs division: last-ulp differences allowed.
        ASSERT_NEAR(b_ref.data()[i], b_simd.data()[i],
                    1e-12 * std::max(1.0, std::abs(b_ref.data()[i])))
            << "m=" << m << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(CholeskyKernels, SyrkSimdMatchesScalarAcrossFringeShapes) {
  // Odd n exercises the single-row fringe below the 2-row pairs.
  for (std::size_t n = 1; n <= 9; ++n) {
    for (std::size_t k : {1u, 2u, 7u}) {
      kernels::Matrix a(n, k), c_ref(n, n), c_simd(n, n);
      a.fill_random(static_cast<unsigned>(n * 8 + k));
      c_ref.fill_random(static_cast<unsigned>(k + 1));
      c_simd = c_ref;
      kernels::syrk_ln(n, k, a.data(), k, c_ref.data(), n);
      kernels::syrk_ln_simd(n, k, a.data(), k, c_simd.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          ASSERT_NEAR(c_ref.at(i, j), c_simd.at(i, j), 1e-12)
              << "n=" << n << " k=" << k;
        }
        for (std::size_t j = i + 1; j < n; ++j) {
          // Upper triangle untouched by both kernels.
          ASSERT_DOUBLE_EQ(c_ref.at(i, j), c_simd.at(i, j));
        }
      }
    }
  }
}

TEST(CholeskyKernels, PotrfMatchesDefinition) {
  const std::size_t n = 16;
  kernels::Matrix a = spd_matrix(n, 1);
  kernels::Matrix original = a;
  ASSERT_TRUE(kernels::potrf(n, a.data(), n));
  EXPECT_LT(kernels::cholesky_residual(n, a.data(), n, original.data(), n), 1e-9);
}

TEST(CholeskyKernels, PotrfRejectsIndefiniteMatrix) {
  kernels::Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -5.0;  // not SPD
  EXPECT_FALSE(kernels::potrf(2, a.data(), 2));
}

TEST(CholeskyKernels, TrsmSolvesAgainstLowerTriangularTranspose) {
  // L known, X known, B = X·Lᵀ; trsm must recover X from (L, B).
  const std::size_t n = 8, m = 5;
  kernels::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) l.at(i, j) = (i == j) ? 2.0 + i : 0.3;
  }
  kernels::Matrix x(m, n);
  x.fill_random(7);
  kernels::Matrix b(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k <= j; ++k) sum += x.at(i, k) * l.at(j, k);
      b.at(i, j) = sum;
    }
  }
  kernels::trsm_rlt(m, n, l.data(), n, b.data(), n);
  EXPECT_LT(kernels::max_abs_diff(b.data(), x.data(), m * n), 1e-9);
}

TEST(CholeskyKernels, SyrkUpdatesLowerTriangle) {
  const std::size_t n = 6, k = 4;
  kernels::Matrix a(n, k);
  a.fill_random(3);
  kernels::Matrix c(n, n);
  c.fill(10.0);
  kernels::Matrix expected = c;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += a.at(i, p) * a.at(j, p);
      expected.at(i, j) -= sum;
    }
  }
  kernels::syrk_ln(n, k, a.data(), k, c.data(), n);
  EXPECT_LT(kernels::max_abs_diff(c.data(), expected.data(), n * n), 1e-12);
  EXPECT_DOUBLE_EQ(c.at(0, n - 1), 10.0);  // strict upper untouched
}

TEST(CholeskyKernels, GemmNtSubtracts) {
  const std::size_t m = 3, n = 4, k = 5;
  kernels::Matrix a(m, k), b(n, k), c(m, n);
  a.fill_random(4);
  b.fill_random(5);
  c.fill(1.0);
  kernels::Matrix expected = c;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += a.at(i, p) * b.at(j, p);
      expected.at(i, j) -= sum;
    }
  }
  kernels::gemm_nt_minus(m, n, k, a.data(), k, b.data(), k, c.data(), n);
  EXPECT_LT(kernels::max_abs_diff(c.data(), expected.data(), m * n), 1e-12);
}

TEST(CholeskyKernels, FlopCounts) {
  EXPECT_DOUBLE_EQ(kernels::potrf_flops(4), 64.0 / 3.0);
  EXPECT_DOUBLE_EQ(kernels::trsm_flops(2, 3), 18.0);
  EXPECT_DOUBLE_EQ(kernels::syrk_flops(3, 5), 45.0);
  EXPECT_DOUBLE_EQ(kernels::gemm_flops_nt(2, 3, 4), 48.0);
}

// --- 2-D tile partitioning ---------------------------------------------------

TEST(PartitionTiles, GridGeometryAndStrides) {
  starvm::Engine engine(starvm::EngineConfig::cpus(1));
  const std::size_t n = 12;
  std::vector<double> data(n * n);
  starvm::DataHandle* h = engine.register_matrix(data.data(), n, n);
  auto tiles = engine.partition_tiles(h, 3, 4);
  ASSERT_EQ(tiles.size(), 12u);
  for (const auto* t : tiles) {
    EXPECT_EQ(t->rows(), 4u);
    EXPECT_EQ(t->cols(), 3u);
    EXPECT_EQ(t->ld(), n);  // strided view into the parent
    EXPECT_EQ(t->parent(), h);
  }
  // Tile (1,2) starts at row 4, column 6.
  EXPECT_EQ(tiles[1 * 4 + 2]->ptr(), data.data() + 4 * n + 6);
}

TEST(PartitionTiles, TileTasksComposeCorrectly) {
  starvm::Engine engine(starvm::EngineConfig::cpus(2));
  const std::size_t n = 8;
  std::vector<double> data(n * n, 1.0);
  starvm::DataHandle* h = engine.register_matrix(data.data(), n, n);
  auto tiles = engine.partition_tiles(h, 2, 2);

  // Each tile task adds its (row,col) signature honoring the stride.
  starvm::Codelet c;
  c.name = "stamp";
  c.impls.push_back({starvm::DeviceKind::kCpu, [](const starvm::ExecContext& ctx) {
                       const auto& t = ctx.handle(0);
                       for (std::size_t r = 0; r < t.rows(); ++r) {
                         for (std::size_t col = 0; col < t.cols(); ++col) {
                           ctx.buffer(0)[r * t.ld() + col] += 1.0;
                         }
                       }
                     }});
  for (auto* t : tiles) {
    engine.submit(starvm::TaskDesc{&c, {{t, starvm::Access::kReadWrite}}});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  for (double v : data) EXPECT_DOUBLE_EQ(v, 2.0);  // every cell exactly once
}

// --- the tiled solver ----------------------------------------------------------

class TiledCholeskyTest
    : public testing::TestWithParam<std::tuple<int, int, starvm::SchedulerKind>> {};

TEST_P(TiledCholeskyTest, FactorizationIsCorrect) {
  const auto [n_int, tiles, scheduler] = GetParam();
  const std::size_t n = static_cast<std::size_t>(n_int);
  kernels::Matrix a = spd_matrix(n, 11);
  kernels::Matrix original = a;

  starvm::EngineConfig config = starvm::EngineConfig::cpus(4);
  config.scheduler = scheduler;
  starvm::Engine engine(std::move(config));
  auto result = tiled_cholesky(engine, a.data(), n, tiles);
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_LT(kernels::cholesky_residual(n, a.data(), n, original.data(), n), 1e-8);

  // Task count: T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm.
  const int t = tiles;
  EXPECT_EQ(result.value().tasks_submitted,
            t + t * (t - 1) / 2 + t * (t - 1) / 2 + t * (t - 1) * (t - 2) / 6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledCholeskyTest,
    testing::Values(std::make_tuple(16, 1, starvm::SchedulerKind::kEager),
                    std::make_tuple(32, 4, starvm::SchedulerKind::kEager),
                    std::make_tuple(48, 4, starvm::SchedulerKind::kWorkStealing),
                    std::make_tuple(64, 8, starvm::SchedulerKind::kHeft),
                    std::make_tuple(60, 5, starvm::SchedulerKind::kHeft)));

TEST(TiledCholesky, AcceleratorsParticipate) {
  const std::size_t n = 64;
  kernels::Matrix a = spd_matrix(n, 13);
  kernels::Matrix original = a;

  starvm::EngineConfig config;
  starvm::DeviceSpec cpu;
  cpu.name = "cpu";
  config.devices.push_back(cpu);
  starvm::DeviceSpec accel;
  accel.name = "gpu";
  accel.kind = starvm::DeviceKind::kAccelerator;
  accel.sustained_gflops = 100.0;
  config.devices.push_back(accel);
  starvm::Engine engine(std::move(config));

  auto result = tiled_cholesky(engine, a.data(), n, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(kernels::cholesky_residual(n, a.data(), n, original.data(), n), 1e-8);
}

TEST(TiledCholesky, RejectsBadTiling) {
  starvm::Engine engine(starvm::EngineConfig::cpus(1));
  std::vector<double> a(9);
  EXPECT_FALSE(tiled_cholesky(engine, a.data(), 3, 2).ok());  // 3 % 2 != 0
  EXPECT_FALSE(tiled_cholesky(engine, a.data(), 0, 1).ok());
}

TEST(TiledCholesky, DetectsNonSpdMatrix) {
  const std::size_t n = 16;
  kernels::Matrix a(n, n);
  a.fill_random(5);  // random non-symmetric: almost surely not SPD
  starvm::Engine engine(starvm::EngineConfig::cpus(2));
  auto result = tiled_cholesky(engine, a.data(), n, 4);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace solvers
