#include <gtest/gtest.h>

#include <numeric>

#include "starvm/graph.hpp"

namespace starvm {
namespace {

using Edge = TaskGraph::Edge;

/// True when `edges` holds an edge from->to of `kind`.
bool has_edge(const std::vector<Edge>& edges, int from, int to, Edge::Kind kind) {
  for (const Edge& e : edges) {
    if (e.from == from && e.to == to && e.kind == kind) return true;
  }
  return false;
}

TEST(TaskGraph, BuffersGetDisjointRanges) {
  TaskGraph g;
  const int a = g.add_buffer("a", 256);
  const int b = g.add_buffer("b", 256);
  EXPECT_FALSE(g.ranges_overlap(a, b));
  EXPECT_FALSE(g.same_lineage(a, b));
}

TEST(TaskGraph, AddBufferAtModelsAliasedRegistration) {
  TaskGraph g;
  const int a = g.add_buffer("alloc", 1024);
  // A second handle registered over the same allocation, as
  // register_vector(data.data(), n) twice would produce at runtime.
  const int b = g.add_buffer_at("alias", g.buffers()[a].base, 1024);
  EXPECT_TRUE(g.ranges_overlap(a, b));
  EXPECT_FALSE(g.same_lineage(a, b));  // two registrations, not parent/block
}

TEST(TaskGraph, PartitionSplitsRangeLikeEngine) {
  TaskGraph g;
  const int parent = g.add_buffer("v", 100);
  const std::vector<int> blocks = g.partition(parent, 3);
  ASSERT_EQ(blocks.size(), 3u);

  // Blocks tile the parent range exactly (chunk + remainder spread).
  std::uint64_t total = 0;
  std::uint64_t cursor = g.buffers()[parent].base;
  for (const int block : blocks) {
    const GraphBuffer& b = g.buffers()[block];
    EXPECT_EQ(b.base, cursor);
    EXPECT_EQ(b.parent, parent);
    cursor += b.bytes;
    total += b.bytes;
  }
  EXPECT_EQ(total, 100u);

  // Parent/block overlap is lineage; sibling blocks are disjoint.
  EXPECT_TRUE(g.ranges_overlap(parent, blocks[0]));
  EXPECT_TRUE(g.same_lineage(parent, blocks[0]));
  EXPECT_FALSE(g.ranges_overlap(blocks[0], blocks[1]));
}

TEST(TaskGraph, InfersRawWarWawEdges) {
  TaskGraph g;
  const int buf = g.add_buffer("v", 64);
  const int w0 = g.add_task("w0", {{buf, Access::kWrite}});
  const int r0 = g.add_task("r0", {{buf, Access::kRead}});
  const int r1 = g.add_task("r1", {{buf, Access::kRead}});
  const int w1 = g.add_task("w1", {{buf, Access::kWrite}});

  const auto edges = g.edges();
  EXPECT_TRUE(has_edge(edges, w0, r0, Edge::kRaw));
  EXPECT_TRUE(has_edge(edges, w0, r1, Edge::kRaw));
  EXPECT_TRUE(has_edge(edges, w0, w1, Edge::kWaw));
  EXPECT_TRUE(has_edge(edges, r0, w1, Edge::kWar));
  EXPECT_TRUE(has_edge(edges, r1, w1, Edge::kWar));
  // Concurrent pure readers are unordered.
  EXPECT_FALSE(has_edge(edges, r0, r1, Edge::kRaw));
}

TEST(TaskGraph, PureReadersShareNoEdges) {
  TaskGraph g;
  const int buf = g.add_buffer("v", 64);
  g.add_task("r0", {{buf, Access::kRead}});
  g.add_task("r1", {{buf, Access::kRead}});
  EXPECT_TRUE(g.edges().empty());
}

TEST(TaskGraph, ExplicitDepsKeepBackwardDropForward) {
  TaskGraph g;
  const int t0 = g.add_task("t0", {});
  // Depends on t0 (backward, kept) and on task 5 (forward/unknown: the
  // engine treats those as satisfied, so no edge may appear).
  const int t1 = g.add_task("t1", {}, {t0, 5});

  const auto all = g.edges();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(has_edge(all, t0, t1, Edge::kExplicit));

  // edges(false) drops inferred edges but keeps the declared ones.
  TaskGraph h;
  const int buf = h.add_buffer("v", 64);
  const int w0 = h.add_task("w0", {{buf, Access::kWrite}});
  const int w1 = h.add_task("w1", {{buf, Access::kWrite}}, {w0});
  EXPECT_TRUE(has_edge(h.edges(), w0, w1, Edge::kWaw));
  const auto explicit_only = h.edges(/*include_inferred=*/false);
  ASSERT_EQ(explicit_only.size(), 1u);
  EXPECT_TRUE(has_edge(explicit_only, w0, w1, Edge::kExplicit));
}

TEST(TaskGraph, ReachabilityIsTransitive) {
  TaskGraph g;
  const int buf = g.add_buffer("v", 64);
  const int t0 = g.add_task("t0", {{buf, Access::kWrite}});
  const int t1 = g.add_task("t1", {{buf, Access::kReadWrite}});
  const int t2 = g.add_task("t2", {{buf, Access::kRead}});
  const int lone = g.add_task("lone", {});

  const auto reach = g.reachability(g.edges());
  EXPECT_TRUE(reach.before(t0, t1));
  EXPECT_TRUE(reach.before(t0, t2));  // via t1
  EXPECT_FALSE(reach.before(t2, t0));
  EXPECT_TRUE(reach.ordered(t0, t2));
  EXPECT_FALSE(reach.ordered(t0, lone));
}

TEST(TaskGraph, FindsDeclaredCycle) {
  TaskGraph g;
  // t0 forward-depends on t1, t1 backward-depends on t0: a declared cycle
  // the engine would silently break by dropping the forward half.
  g.add_task("t0", {}, {1});
  g.add_task("t1", {}, {0});
  const std::vector<int> cycle = g.find_declared_cycle();
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), 0), cycle.end());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), 1), cycle.end());
}

TEST(TaskGraph, AcyclicDeclaredDepsReportNoCycle) {
  TaskGraph g;
  const int t0 = g.add_task("t0", {});
  const int t1 = g.add_task("t1", {}, {t0});
  g.add_task("t2", {}, {t0, t1});
  EXPECT_TRUE(g.find_declared_cycle().empty());
}

TEST(TaskGraph, AddBufferAtRejectsWrappingRange) {
  TaskGraph g;
  // base + bytes past 2^64 would wrap and poison every overlap query.
  EXPECT_EQ(g.add_buffer_at("wrap", UINT64_MAX, 2), -1);
  EXPECT_EQ(g.add_buffer_at("wrap2", UINT64_MAX - 9, 10 + 1), -1);
  EXPECT_TRUE(g.buffers().empty());
  // The exact fit (base + bytes == 2^64) is still representable.
  EXPECT_GE(g.add_buffer_at("fit", UINT64_MAX - 10, 10), 0);
  // Fresh allocation would land past the top: it fails safely, it does
  // not wrap around into the low ranges.
  EXPECT_EQ(g.add_buffer("later", 64), -1);
}

TEST(TaskGraph, ZeroByteBuffersNeverOverlap) {
  TaskGraph g;
  const int a = g.add_buffer("a", 256);
  const int empty = g.add_buffer_at("empty", g.buffers()[a].base, 0);
  EXPECT_EQ(g.buffers()[empty].bytes, 0u);
  EXPECT_FALSE(g.ranges_overlap(a, empty));
  EXPECT_FALSE(g.ranges_overlap(empty, empty));
}

TEST(TaskGraph, OverlappingExplicitRangesAreModeled) {
  TaskGraph g;
  const int a = g.add_buffer("a", 256);
  // Partial overlap (tail of `a` / head of `b`) counts, not just identity.
  const int b = g.add_buffer_at("b", g.buffers()[a].base + 128, 256);
  EXPECT_TRUE(g.ranges_overlap(a, b));
  EXPECT_FALSE(g.same_lineage(a, b));
}

TEST(TaskGraph, RootOfWalksPartitionLineage) {
  TaskGraph g;
  const int root = g.add_buffer("m", 1000);
  const auto rows = g.partition(root, 2);
  const auto tiles = g.partition(rows[0], 2);
  EXPECT_EQ(g.root_of(root), root);
  EXPECT_EQ(g.root_of(rows[1]), root);
  EXPECT_EQ(g.root_of(tiles[0]), root);
  EXPECT_EQ(g.root_of(-1), -1);
  EXPECT_EQ(g.root_of(999), -1);
}

TEST(TaskGraph, RootLiveIntervalsSpanFirstToLastTouch) {
  TaskGraph g;
  const int a = g.add_buffer("a", 100);
  const int b = g.add_buffer("b", 100);
  const int idle = g.add_buffer("idle", 100);
  const auto blocks = g.partition(b, 2);
  g.add_task("t0", {{a, Access::kWrite}});
  g.add_task("t1", {{blocks[0], Access::kWrite}});
  g.add_task("t2", {{a, Access::kRead}, {blocks[1], Access::kRead}});
  const auto live = g.root_live_intervals();
  EXPECT_EQ(live[static_cast<std::size_t>(a)].first_task, 0);
  EXPECT_EQ(live[static_cast<std::size_t>(a)].last_task, 2);
  // A block touch counts against the root, and blocks carry the root's
  // interval so footprint queries can index by any handle.
  EXPECT_EQ(live[static_cast<std::size_t>(b)].first_task, 1);
  EXPECT_EQ(live[static_cast<std::size_t>(b)].last_task, 2);
  EXPECT_EQ(live[static_cast<std::size_t>(blocks[0])].first_task, 1);
  EXPECT_EQ(live[static_cast<std::size_t>(blocks[0])].last_task, 2);
  // Never-touched roots report an empty interval.
  EXPECT_EQ(live[static_cast<std::size_t>(idle)].first_task, -1);
  EXPECT_EQ(live[static_cast<std::size_t>(idle)].last_task, -1);
}

TEST(TaskGraph, TotalRootBytesCountsRootsOnly) {
  TaskGraph g;
  g.add_buffer("a", 300);
  const int b = g.add_buffer("b", 700);
  g.partition(b, 2);  // blocks must not double-count their root's bytes
  EXPECT_EQ(g.total_root_bytes(), 1000u);
}

TEST(TaskGraph, SetTaskFlopsIsBoundsChecked) {
  TaskGraph g;
  const int t = g.add_task("t", {});
  EXPECT_EQ(g.tasks()[static_cast<std::size_t>(t)].flops, 0.0);
  g.set_task_flops(t, 2.5e9);
  EXPECT_EQ(g.tasks()[static_cast<std::size_t>(t)].flops, 2.5e9);
  g.set_task_flops(-1, 1.0);   // out of range: ignored, no crash
  g.set_task_flops(42, 1.0);
  EXPECT_EQ(g.tasks()[static_cast<std::size_t>(t)].flops, 2.5e9);
}

TEST(TaskGraph, PartitionOfPartitionKeepsLineage) {
  TaskGraph g;
  const int root = g.add_buffer("m", 1000);
  const auto rows = g.partition(root, 2);
  const auto tiles = g.partition(rows[0], 2);
  EXPECT_TRUE(g.same_lineage(root, tiles[0]));
  EXPECT_TRUE(g.same_lineage(rows[0], tiles[1]));
  EXPECT_FALSE(g.same_lineage(rows[1], tiles[0]));
  EXPECT_FALSE(g.ranges_overlap(rows[1], tiles[0]));
}

}  // namespace
}  // namespace starvm
