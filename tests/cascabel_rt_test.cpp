#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/rt.hpp"
#include "discovery/presets.hpp"
#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"
#include "pdl/serializer.hpp"
#include "starvm/bridge.hpp"
#include "starvm/perf_store.hpp"

namespace cascabel::rt {
namespace {

using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

TaskRepository builtin_repo() {
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  return repo;
}

TEST(Context, ConstructionRunsPreselection) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  EXPECT_NE(ctx.selection().candidates("Idgemm"), nullptr);
  EXPECT_FALSE(pdl::has_errors(ctx.diagnostics()));
  EXPECT_EQ(ctx.engine().device_count(), 8u);
}

TEST(Context, VecaddExecutesWithBlockDistribution) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  const std::size_t n = 1000;
  std::vector<double> a(n, 1.0), b(n, 2.0);
  auto status = ctx.execute("Ivecadd", "cpu",
                            {arg(a.data(), n, AccessMode::kReadWrite,
                                 DistributionKind::kBlock),
                             arg(b.data(), n, AccessMode::kRead,
                                 DistributionKind::kBlock)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 3.0);
  // Block decomposition produced multiple tasks.
  EXPECT_GT(ctx.stats().tasks_completed, 1u);
}

TEST(Context, DgemmRowBandedMatchesReference) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  const std::size_t n = 96;
  kernels::Matrix a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(1);
  b.fill_random(2);

  auto status = ctx.execute(
      "Idgemm", "",
      {arg_matrix(c.data(), n, n, AccessMode::kReadWrite, DistributionKind::kBlock),
       arg_matrix(a.data(), n, n, AccessMode::kRead, DistributionKind::kBlock),
       arg_matrix(b.data(), n, n, AccessMode::kRead, DistributionKind::kNone)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());

  kernels::dgemm_naive(n, n, n, a.data(), b.data(), ref.data());
  EXPECT_LT(kernels::max_abs_diff(c.data(), ref.data(), n * n), 1e-9);
}

TEST(Context, GpuPlatformUsesAccelerators) {
  Options options;
  options.mode = starvm::ExecutionMode::kHybrid;
  Context ctx(paper_platform_starpu_2gpu(), builtin_repo(), options);
  const std::size_t n = 128;
  kernels::Matrix a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(3);
  b.fill_random(4);

  auto status = ctx.execute(
      "Idgemm", "all",
      {arg_matrix(c.data(), n, n, AccessMode::kReadWrite, DistributionKind::kBlock),
       arg_matrix(a.data(), n, n, AccessMode::kRead, DistributionKind::kBlock),
       arg_matrix(b.data(), n, n, AccessMode::kRead, DistributionKind::kNone)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());

  kernels::dgemm_naive(n, n, n, a.data(), b.data(), ref.data());
  EXPECT_LT(kernels::max_abs_diff(c.data(), ref.data(), n * n), 1e-9);

  // Results are correct AND some work landed on the simulated GPUs.
  const auto stats = ctx.stats();
  std::uint64_t accel_tasks = 0;
  for (const auto& d : stats.devices) {
    if (d.kind == starvm::DeviceKind::kAccelerator) accel_tasks += d.tasks_run;
  }
  EXPECT_GT(accel_tasks, 0u);
}

TEST(Context, GroupRestrictsToGpuOnly) {
  Context ctx(paper_platform_starpu_2gpu(), builtin_repo());
  const std::size_t n = 64;
  kernels::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(5);
  b.fill_random(6);

  // Group "gpu" names only the two gpu workers: no smp variant applies,
  // but the fall-back (mapped to the Master) keeps CPU execution legal.
  auto status = ctx.execute(
      "Idgemm", "gpu",
      {arg_matrix(c.data(), n, n, AccessMode::kReadWrite, DistributionKind::kBlock),
       arg_matrix(a.data(), n, n, AccessMode::kRead, DistributionKind::kBlock),
       arg_matrix(b.data(), n, n, AccessMode::kRead, DistributionKind::kNone)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());
}

TEST(Context, MostSpecificUsableVariantWins) {
  // Two CPU variants of one interface: a generic smp one and a tuned one
  // with a tighter pattern. The tuned implementation must be selected.
  TaskRepository repo = TaskRepository::with_defaults();
  std::atomic<int> generic_runs{0}, tuned_runs{0};

  TaskVariant fallback;
  fallback.pragma.task_interface = "Imark";
  fallback.pragma.variant_name = "mark_seq";
  fallback.pragma.target_platforms = {"x86"};
  repo.add_variant(fallback);
  repo.bind(BoundImpl{"mark_seq", starvm::DeviceKind::kCpu,
                      [&](const starvm::ExecContext&) { ++generic_runs; }, nullptr});

  TaskVariant tuned;
  tuned.pragma.task_interface = "Imark";
  tuned.pragma.variant_name = "mark_tuned";
  tuned.pragma.target_platforms = {
      "pattern(M(ARCHITECTURE=x86)[W(ARCHITECTURE=x86_core)x8])"};
  repo.add_variant(tuned);
  repo.bind(BoundImpl{"mark_tuned", starvm::DeviceKind::kCpu,
                      [&](const starvm::ExecContext&) { ++tuned_runs; }, nullptr});

  Context ctx(paper_platform_starpu_cpu(), std::move(repo));
  std::vector<double> data(8, 0.0);
  ASSERT_TRUE(ctx.execute("Imark", "",
                          {arg(data.data(), 8, AccessMode::kRead,
                               DistributionKind::kNone)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  EXPECT_EQ(tuned_runs.load(), 1);
  EXPECT_EQ(generic_runs.load(), 0);
}

TEST(Context, WarmPerfStoreFlipsVariantSelection) {
  // Declared ranking prefers the non-fallback smp variant; a warm store
  // holding trustworthy measurements that say the fallback variant is
  // faster must flip the choice (the autotuning loop's pay-off).
  const pdl::Platform platform = paper_platform_starpu_cpu();
  auto engine_config = starvm::engine_config_from_platform(platform);
  ASSERT_TRUE(engine_config.ok());
  const std::uint64_t hash =
      starvm::perf_store::descriptor_hash(engine_config.value().devices);

  std::atomic<int> slow_runs{0}, fast_runs{0};
  const auto make_repo = [&]() {
    TaskRepository repo = TaskRepository::with_defaults();
    TaskVariant slow;
    slow.pragma.task_interface = "Ibench";
    slow.pragma.variant_name = "bench_slow";
    slow.pragma.target_platforms = {"smp"};
    repo.add_variant(slow);
    repo.bind(BoundImpl{"bench_slow", starvm::DeviceKind::kCpu,
                        [&](const starvm::ExecContext&) { ++slow_runs; }, nullptr});
    TaskVariant fast;
    fast.pragma.task_interface = "Ibench";
    fast.pragma.variant_name = "bench_fast";
    fast.pragma.target_platforms = {"x86"};
    repo.add_variant(fast);
    repo.bind(BoundImpl{"bench_fast", starvm::DeviceKind::kCpu,
                        [&](const starvm::ExecContext&) { ++fast_runs; }, nullptr});
    return repo;
  };
  std::vector<double> data(8, 0.0);
  const auto run_once = [&](const Options& options) {
    Context ctx(platform, make_repo(), options);
    EXPECT_TRUE(ctx.execute("Ibench", "",
                            {arg(data.data(), 8, AccessMode::kRead,
                                 DistributionKind::kNone)})
                    .ok());
    EXPECT_TRUE(ctx.wait().ok());
    bool flip_logged = false;
    for (const auto& d : ctx.diagnostics()) {
      if (d.str().find("measured-fastest") != std::string::npos) {
        flip_logged = true;
      }
    }
    return flip_logged;
  };

  // Cold: declared ranking wins, nothing to flip.
  EXPECT_FALSE(run_once(Options{}));
  EXPECT_GT(slow_runs.load(), 0);
  EXPECT_EQ(fast_runs.load(), 0);

  // Warm: the store says bench_fast measured 10x faster.
  const std::string path =
      std::string(::testing::TempDir()) + "rt_flip.perfstore";
  starvm::perf_store::Store store;
  store.descriptor_hash = hash;
  store.entries = {{"bench_slow", 0, 1e-3, 5, 5.0},
                   {"bench_fast", 0, 1e-4, 5, 50.0}};
  ASSERT_TRUE(starvm::perf_store::save(store, path));
  slow_runs = 0;
  fast_runs = 0;
  Options warm;
  warm.perf_store_path = path;
  EXPECT_TRUE(run_once(warm));  // the flip lands in the decision log
  EXPECT_EQ(slow_runs.load(), 0);
  EXPECT_GT(fast_runs.load(), 0);

  // Below the sample threshold the measurement stays advisory-only.
  store.entries = {{"bench_slow", 0, 1e-3, 1, 5.0},
                   {"bench_fast", 0, 1e-4, 1, 50.0}};
  ASSERT_TRUE(starvm::perf_store::save(store, path));
  slow_runs = 0;
  fast_runs = 0;
  EXPECT_FALSE(run_once(warm));
  EXPECT_GT(slow_runs.load(), 0);
  EXPECT_EQ(fast_runs.load(), 0);
  std::remove(path.c_str());
}

TEST(Context, AccuracyGuardVetoesFasterButLooserVariant) {
  // The autotuning flip meets the A7xx accuracy contract: a warm store says
  // the fp32-flavoured variant is 10x faster, but its declared error model
  // cannot meet the program's tolerance, so the guard refuses the flip and
  // keeps the accurate variant — and says so in the decision log. Relaxing
  // the tolerance re-enables the flip unchanged.
  const pdl::Platform platform = paper_platform_starpu_cpu();
  auto engine_config = starvm::engine_config_from_platform(platform);
  ASSERT_TRUE(engine_config.ok());
  const std::uint64_t hash =
      starvm::perf_store::descriptor_hash(engine_config.value().devices);

  std::atomic<int> accurate_runs{0}, loose_runs{0};
  const auto make_repo = [&]() {
    TaskRepository repo = TaskRepository::with_defaults();
    TaskVariant accurate;
    accurate.pragma.task_interface = "Ibench";
    accurate.pragma.variant_name = "bench_accurate";
    accurate.pragma.target_platforms = {"smp"};
    accurate.error_model =
        starvm::ErrorModel::rounding(1.0, starvm::ErrorModel::kUlpDouble);
    repo.add_variant(accurate);
    repo.bind(BoundImpl{"bench_accurate", starvm::DeviceKind::kCpu,
                        [&](const starvm::ExecContext&) { ++accurate_runs; },
                        nullptr});
    TaskVariant loose;
    loose.pragma.task_interface = "Ibench";
    loose.pragma.variant_name = "bench_loose";
    loose.pragma.target_platforms = {"x86"};
    loose.error_model =
        starvm::ErrorModel::rounding(3.0, starvm::ErrorModel::kUlpSingle);
    repo.add_variant(loose);
    repo.bind(BoundImpl{"bench_loose", starvm::DeviceKind::kCpu,
                        [&](const starvm::ExecContext&) { ++loose_runs; },
                        nullptr});
    return repo;
  };

  // Warm store: bench_loose measured 10x faster.
  const std::string path =
      std::string(::testing::TempDir()) + "rt_veto.perfstore";
  starvm::perf_store::Store store;
  store.descriptor_hash = hash;
  store.entries = {{"bench_accurate", 0, 1e-3, 5, 5.0},
                   {"bench_loose", 0, 1e-4, 5, 50.0}};
  ASSERT_TRUE(starvm::perf_store::save(store, path));

  std::vector<double> data(8, 0.0);
  const auto run_once = [&](const Options& options) {
    Context ctx(platform, make_repo(), options);
    EXPECT_TRUE(ctx.execute("Ibench", "",
                            {arg(data.data(), 8, AccessMode::kRead,
                                 DistributionKind::kNone)})
                    .ok());
    EXPECT_TRUE(ctx.wait().ok());
    bool veto_logged = false;
    for (const auto& d : ctx.diagnostics()) {
      if (d.str().find("accuracy guard: veto") != std::string::npos) {
        veto_logged = true;
      }
    }
    return veto_logged;
  };

  // Tight tolerance: loose bound 3*1000*2^-24 ~ 1.8e-4 is vetoed, the
  // accurate variant's 1000*2^-53 ~ 1.1e-13 passes. No flip despite the
  // measured 10x, and the veto is logged.
  Options guarded;
  guarded.perf_store_path = path;
  guarded.accuracy.enabled = true;
  guarded.accuracy.tolerance = 1e-9;
  guarded.accuracy.depth = 1000.0;
  EXPECT_TRUE(run_once(guarded));
  EXPECT_GT(accurate_runs.load(), 0);
  EXPECT_EQ(loose_runs.load(), 0);

  // Relaxed tolerance: both bounds pass, the measured flip proceeds.
  accurate_runs = 0;
  loose_runs = 0;
  guarded.accuracy.tolerance = 1.0;
  EXPECT_FALSE(run_once(guarded));
  EXPECT_EQ(accurate_runs.load(), 0);
  EXPECT_GT(loose_runs.load(), 0);

  // Guard disabled behaves exactly like the plain flip test.
  accurate_runs = 0;
  loose_runs = 0;
  Options unguarded;
  unguarded.perf_store_path = path;
  EXPECT_FALSE(run_once(unguarded));
  EXPECT_EQ(accurate_runs.load(), 0);
  EXPECT_GT(loose_runs.load(), 0);
  std::remove(path.c_str());
}

TEST(Context, CalibrationAliasPersistsVariantKeyedRates) {
  // The engine observes each task under the chosen variant's name too, so
  // the persisted store carries rates the *selector* can compare across
  // variants — not just the opaque iface@group rows HEFT uses.
  const std::string path =
      std::string(::testing::TempDir()) + "rt_alias.perfstore";
  std::remove(path.c_str());
  Options options;
  options.perf_store_path = path;
  {
    Context ctx(paper_platform_starpu_cpu(), builtin_repo(), options);
    const std::size_t n = 64;
    kernels::Matrix a(n, n), b(n, n), c(n, n);
    a.fill_random(1);
    b.fill_random(2);
    ASSERT_TRUE(ctx.execute("Idgemm", "all",
                            {arg_matrix(c.data(), n, n, AccessMode::kReadWrite,
                                        DistributionKind::kBlock),
                             arg_matrix(a.data(), n, n, AccessMode::kRead,
                                        DistributionKind::kBlock),
                             arg_matrix(b.data(), n, n, AccessMode::kRead,
                                        DistributionKind::kNone)})
                    .ok());
    EXPECT_TRUE(ctx.wait().ok());
  }  // engine shutdown persists the store

  const starvm::perf_store::LoadResult loaded = starvm::perf_store::load(path);
  ASSERT_EQ(loaded.status, starvm::perf_store::LoadStatus::kLoaded)
      << loaded.detail;
  bool has_row_key = false;
  bool has_variant_key = false;
  for (const starvm::perf_store::Entry& e : loaded.store.entries) {
    if (e.codelet.rfind("Idgemm@", 0) == 0) has_row_key = true;
    if (e.codelet == "dgemm_smp" || e.codelet == "dgemm_tiled" ||
        e.codelet == "dgemm_seq") {
      has_variant_key = true;
    }
  }
  EXPECT_TRUE(has_row_key);
  EXPECT_TRUE(has_variant_key);
  std::remove(path.c_str());
}

TEST(Context, UnknownInterfaceFails) {
  Context ctx(paper_platform_single(), builtin_repo());
  auto status = ctx.execute("Imissing", "", {});
  EXPECT_FALSE(status.ok());
}

TEST(Context, SequentialCallsReuseRegisteredData) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  const std::size_t n = 256;
  std::vector<double> a(n, 0.0), b(n, 1.0);
  for (int iter = 0; iter < 3; ++iter) {
    auto status = ctx.execute("Ivecadd", "",
                              {arg(a.data(), n, AccessMode::kReadWrite,
                                   DistributionKind::kBlock),
                               arg(b.data(), n, AccessMode::kRead,
                                   DistributionKind::kBlock)});
    ASSERT_TRUE(status.ok());
  }
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Context, CyclicDistributionComputesSameResult) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  const std::size_t n = 500;
  std::vector<double> a(n, 1.0), b(n, 5.0);
  auto status = ctx.execute("Ivecadd", "",
                            {arg(a.data(), n, AccessMode::kReadWrite,
                                 DistributionKind::kCyclic),
                             arg(b.data(), n, AccessMode::kRead,
                                 DistributionKind::kCyclic)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 6.0);
}

TEST(Context, HostModifiedInvalidatesReplicas) {
  Context ctx(paper_platform_starpu_2gpu(), builtin_repo());
  const std::size_t n = 256;
  std::vector<double> a(n, 1.0), b(n, 2.0);
  ASSERT_TRUE(ctx.execute("Ivecadd", "gpu",
                          {arg(a.data(), n, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), n, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  const auto transfers_before = ctx.stats().transfers;
  EXPECT_GT(transfers_before, 0u);

  // Direct host update of b, declared; re-running must re-transfer.
  std::fill(b.begin(), b.end(), 5.0);
  ctx.host_modified(b.data());
  ASSERT_TRUE(ctx.execute("Ivecadd", "gpu",
                          {arg(a.data(), n, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), n, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  EXPECT_GT(ctx.stats().transfers, transfers_before);
  for (double v : a) EXPECT_DOUBLE_EQ(v, 8.0);  // 1 + 2 + 5

  // Unknown pointers are a safe no-op.
  double unrelated = 0.0;
  ctx.host_modified(&unrelated);
}

TEST(Context, PointerReuseWithDifferentGeometryReRegisters) {
  Context ctx(paper_platform_starpu_cpu(), builtin_repo());
  std::vector<double> scratch(64 * 64, 1.0);
  std::vector<double> b(64 * 64, 1.0);

  // First use: a vector of 4096 elements.
  ASSERT_TRUE(ctx.execute("Ivecadd", "",
                          {arg(scratch.data(), 64 * 64, AccessMode::kReadWrite,
                               DistributionKind::kBlock),
                           arg(b.data(), 64 * 64, AccessMode::kRead,
                               DistributionKind::kBlock)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());

  // Second use: the same buffer as a 64x64 matrix in a DGEMM.
  std::vector<double> a2(64 * 64, 0.0), c2(64 * 64, 0.0);
  ASSERT_TRUE(ctx.execute("Idgemm", "",
                          {arg_matrix(c2.data(), 64, 64, AccessMode::kReadWrite,
                                      DistributionKind::kBlock),
                           arg_matrix(a2.data(), 64, 64, AccessMode::kRead,
                                      DistributionKind::kBlock),
                           arg_matrix(scratch.data(), 64, 64, AccessMode::kRead,
                                      DistributionKind::kNone)})
                  .ok());
  EXPECT_TRUE(ctx.wait().ok());
  // C = 0 + A2 (zeros) * scratch = 0; mainly: no crash, geometry honored.
  for (double v : c2) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Context, SinglePlatformRunsSequentialFallback) {
  Context ctx(paper_platform_single(), builtin_repo());
  EXPECT_EQ(ctx.engine().device_count(), 1u);
  const std::size_t n = 64;
  std::vector<double> a(n, 1.0), b(n, 1.0);
  auto status = ctx.execute("Ivecadd", "",
                            {arg(a.data(), n, AccessMode::kReadWrite,
                                 DistributionKind::kBlock),
                             arg(b.data(), n, AccessMode::kRead,
                                 DistributionKind::kBlock)});
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_TRUE(ctx.wait().ok());
  for (double v : a) EXPECT_DOUBLE_EQ(v, 2.0);
}

// --- global context -----------------------------------------------------------

class GlobalRtTest : public testing::Test {
 protected:
  void TearDown() override { shutdown(); }
};

TEST_F(GlobalRtTest, InitializeExecuteWaitShutdown) {
  const std::string xml = pdl::serialize(paper_platform_starpu_cpu());
  ASSERT_TRUE(initialize(xml.c_str()));
  EXPECT_TRUE(initialized());

  const std::size_t n = 128;
  std::vector<double> a(n, 1.0), b(n, 9.0);
  EXPECT_TRUE(execute("Ivecadd", "",
                      {arg(a.data(), n, AccessMode::kReadWrite,
                           DistributionKind::kBlock),
                       arg(b.data(), n, AccessMode::kRead,
                           DistributionKind::kBlock)}));
  wait();
  for (double v : a) EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_GT(stats().tasks_completed, 0u);

  shutdown();
  EXPECT_FALSE(initialized());
}

TEST_F(GlobalRtTest, InitializeRejectsInvalidPdl) {
  EXPECT_FALSE(initialize("<NotPdl/>"));
  EXPECT_FALSE(initialized());
}

TEST_F(GlobalRtTest, ExecuteBeforeInitializeFails) {
  EXPECT_FALSE(execute("Ivecadd", "", {}));
}

TEST_F(GlobalRtTest, RegisteredVariantsAreAvailableAfterInitialize) {
  std::vector<double> seen;
  register_variant("Icustom", "custom_seq", {"x86"}, starvm::DeviceKind::kCpu,
                   [&](const starvm::ExecContext& ctx) {
                     seen.push_back(ctx.buffer(0)[0]);
                   });
  const std::string xml = pdl::serialize(paper_platform_single());
  ASSERT_TRUE(initialize(xml.c_str()));
  std::vector<double> data(4, 3.14);
  EXPECT_TRUE(execute("Icustom", "",
                      {arg(data.data(), 4, AccessMode::kRead,
                           DistributionKind::kNone)}));
  wait();
  ASSERT_EQ(seen.size(), 1u);  // kNone: one task on the whole buffer
  EXPECT_DOUBLE_EQ(seen[0], 3.14);
}

}  // namespace
}  // namespace cascabel::rt
