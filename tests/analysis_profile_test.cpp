// Critical-path profiler tests: span attribution from a hand-built trace,
// the backward critical-path walk (dependency vs device edges), rate-drift
// aggregation across "name[i]" instances, the model-vs-measured diff, and
// the end-to-end fixture run (dgemm_pipeline.graph on undersized.pdl.xml)
// through run_graph_on_platform.
#include <gtest/gtest.h>

#include <string>

#include "analysis/graph_io.hpp"
#include "analysis/profile.hpp"
#include "analysis/schedule_sim.hpp"
#include "pdl/parser.hpp"
#include "starvm/stats.hpp"

namespace analysis {
namespace {

/// Two devices, three tasks: t1 and t2 race on separate devices, t3 waits
/// for t2 (dependency edge) and then runs on device 0 behind t1 (device
/// edge would apply if it were queued earlier). 10 us per-task overhead.
starvm::EngineStats sample_stats() {
  starvm::EngineStats stats;
  stats.task_overhead_us = 10.0;  // 1e-5 s

  starvm::DeviceStats d0;
  d0.name = "cpu0";
  d0.declared_gflops = 10.0;
  starvm::DeviceStats d1;
  d1.name = "acc1";
  d1.declared_gflops = 100.0;
  stats.devices = {d0, d1};

  // TaskTrace: {id, label, device, start, finish, transfer, exec, flops,
  //             ready}.
  // t1: cpu0, ready 0, start 1e-5, finish 1e-3 (exec fills the span).
  stats.trace.push_back({1, "gemm[0]", 0, 1e-5, 1e-3, 0.0, 0.99e-3, 9.9e3, 0.0});
  // t2: acc1, ready 0, start 1e-5, finish 2e-3 — the longer branch.
  stats.trace.push_back(
      {2, "gemm[1]", 1, 1e-5, 2e-3, 0.49e-3, 1.5e-3, 1.5e5, 0.0});
  // t3: cpu0, ready when t2 finished (2e-3), dispatched immediately.
  stats.trace.push_back(
      {3, "reduce", 0, 2e-3 + 1e-5, 3e-3, 0.0, 0.99e-3, 9.9e3, 2e-3});
  stats.makespan_seconds = 3e-3;
  stats.tasks_completed = 3;
  return stats;
}

TEST(Profile, AttributesSpansAndFindsCriticalPath) {
  const RunProfile profile = profile_run(sample_stats());
  ASSERT_EQ(profile.tasks.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.makespan_seconds, 3e-3);

  const TaskProfile& t3 = profile.tasks[2];
  EXPECT_EQ(t3.label, "reduce");
  EXPECT_NEAR(t3.overhead_seconds, 1e-5, 1e-12);
  EXPECT_NEAR(t3.queue_wait_seconds, 0.0, 1e-9);
  EXPECT_NEAR(t3.compute_seconds, 0.99e-3, 1e-12);
  // Attribution invariant: the span decomposes without residue.
  for (const TaskProfile& t : profile.tasks) {
    EXPECT_NEAR(t.finish_seconds - t.ready_seconds,
                t.queue_wait_seconds + t.overhead_seconds +
                    t.transfer_seconds + t.compute_seconds,
                1e-9)
        << t.label;
  }

  // Measured critical path: t2 (start) -> t3 (dependency edge).
  ASSERT_EQ(profile.critical_path.size(), 2u);
  EXPECT_EQ(profile.critical_path[0].edge, CriticalEdge::kStart);
  EXPECT_EQ(profile.tasks[profile.critical_path[0].task].id, 2u);
  EXPECT_EQ(profile.critical_path[1].edge, CriticalEdge::kDependency);
  EXPECT_EQ(profile.tasks[profile.critical_path[1].task].id, 3u);
  EXPECT_TRUE(profile.tasks[1].on_critical_path);
  EXPECT_TRUE(profile.tasks[2].on_critical_path);
  EXPECT_FALSE(profile.tasks[0].on_critical_path);
}

TEST(Profile, DeviceEdgeWhenPredecessorHoldsTheDevice) {
  starvm::EngineStats stats;
  stats.task_overhead_us = 0.0;
  starvm::DeviceStats d0;
  d0.name = "cpu0";
  stats.devices = {d0};
  // Both ready at 0 on one device; the second waits for the first.
  stats.trace.push_back({1, "a", 0, 0.0, 1e-3, 0.0, 1e-3, 0.0, 0.0});
  stats.trace.push_back({2, "b", 0, 1e-3, 2e-3, 0.0, 1e-3, 0.0, 0.0});
  stats.makespan_seconds = 2e-3;

  const RunProfile profile = profile_run(stats);
  ASSERT_EQ(profile.critical_path.size(), 2u);
  EXPECT_EQ(profile.critical_path[1].edge, CriticalEdge::kDevice);
  EXPECT_NEAR(profile.tasks[1].queue_wait_seconds, 1e-3, 1e-9);
  EXPECT_NEAR(profile.critical_queue_wait_seconds, 1e-3, 1e-9);
  EXPECT_NEAR(profile.critical_compute_seconds, 2e-3, 1e-9);
}

TEST(Profile, DriftAggregatesInstancesPerCodeletAndDevice) {
  const RunProfile profile = profile_run(sample_stats());
  // gemm[0] and gemm[1] collapse to one "gemm" codelet, split by device.
  ASSERT_EQ(profile.drift.size(), 3u);
  EXPECT_EQ(profile.drift[0].label, "gemm");
  EXPECT_EQ(profile.drift[0].device, 0);
  EXPECT_NEAR(profile.drift[0].measured_gflops, 9.9e3 / 0.99e-3 / 1e9, 1e-9);
  EXPECT_NEAR(profile.drift[0].drift_ratio, 1e-3, 1e-9);  // vs declared 10
  EXPECT_EQ(profile.drift[1].label, "gemm");
  EXPECT_EQ(profile.drift[1].device, 1);
  EXPECT_EQ(profile.drift[2].label, "reduce");
  EXPECT_EQ(profile.drift[2].tasks, 1u);

  const std::string text = render_profile_text(profile);
  EXPECT_NE(text.find("measured critical path"), std::string::npos);
  EXPECT_NE(text.find("rate drift"), std::string::npos);
  EXPECT_NE(text.find("gemm @ cpu0"), std::string::npos);
}

TEST(Profile, StoreRatesAnnotateMatchingDriftRows) {
  RunProfile profile = profile_run(sample_stats());
  starvm::perf_store::Store store;
  store.descriptor_hash = 1;
  // Matches the "gemm @ device 0" row only; "gemm @ device 1" and
  // "reduce" have no learned cell and must stay unannotated.
  store.entries = {{"gemm", 0, 1e-3, 6, 5.0}};
  apply_store_rates(profile, store);

  ASSERT_EQ(profile.drift.size(), 3u);
  EXPECT_NEAR(profile.drift[0].store_gflops, 5.0, 1e-12);
  EXPECT_NEAR(profile.drift[0].store_drift_ratio,
              profile.drift[0].measured_gflops / 5.0, 1e-9);
  EXPECT_EQ(profile.drift[1].store_gflops, 0.0);
  EXPECT_EQ(profile.drift[2].store_gflops, 0.0);

  const std::string text = render_profile_text(profile);
  EXPECT_NE(text.find("store 5.00 GFLOPS"), std::string::npos);
}

TEST(Profile, DiffAlignsModeledAndMeasuredByBaseName) {
  starvm::TaskGraph graph;
  const int a = graph.add_buffer("A", 1024, {});
  const int id0 = graph.add_task("gemm[0]", {{a, starvm::Access::kRead}}, {}, {});
  graph.set_task_flops(id0, 1e6);
  const int id1 = graph.add_task("gemm[1]", {{a, starvm::Access::kRead}}, {}, {});
  graph.set_task_flops(id1, 1e6);

  SchedulePlan plan;
  plan.makespan_seconds = 4e-3;
  plan.critical_path_seconds = 2e-3;
  plan.placements.resize(2);
  plan.placements[0].start_seconds = 0.0;
  plan.placements[0].finish_seconds = 1e-3;
  plan.placements[1].start_seconds = 0.0;
  plan.placements[1].finish_seconds = 1e-3;

  const RunProfile profile = profile_run(sample_stats());
  const ModelComparison cmp = diff_against_plan(profile, plan, graph);
  EXPECT_DOUBLE_EQ(cmp.modeled_makespan_seconds, 4e-3);
  EXPECT_DOUBLE_EQ(cmp.measured_makespan_seconds, 3e-3);

  // "gemm" pools both modeled placements and both measured instances;
  // "reduce" exists only on the measured side.
  ASSERT_EQ(cmp.tasks.size(), 2u);
  EXPECT_EQ(cmp.tasks[0].name, "gemm");
  EXPECT_EQ(cmp.tasks[0].modeled_tasks, 2u);
  EXPECT_EQ(cmp.tasks[0].measured_tasks, 2u);
  EXPECT_NEAR(cmp.tasks[0].modeled_seconds, 2e-3, 1e-12);
  EXPECT_GT(cmp.tasks[0].ratio, 0.0);
  EXPECT_EQ(cmp.tasks[1].name, "reduce");
  EXPECT_EQ(cmp.tasks[1].modeled_tasks, 0u);
  EXPECT_EQ(cmp.tasks[1].ratio, 0.0);

  const std::string text = render_comparison_text(cmp);
  EXPECT_NE(text.find("model vs measured"), std::string::npos);
  EXPECT_NE(text.find("gemm"), std::string::npos);
}

TEST(Profile, RunsFixtureGraphOnFixturePlatform) {
  const std::string root = PDL_SOURCE_DIR;
  auto graph = load_graph_file(root + "/tests/fixtures/dgemm_pipeline.graph");
  ASSERT_TRUE(graph.ok()) << graph.error().str();
  auto platform = pdl::parse_platform_file(
      root + "/tests/fixtures/undersized.pdl.xml");
  ASSERT_TRUE(platform.ok()) << platform.error().str();

  auto stats = run_graph_on_platform(graph.value(), platform.value());
  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_EQ(stats.value().tasks_completed, 5u);
  EXPECT_EQ(stats.value().failed_tasks, 0u);
  EXPECT_GT(stats.value().makespan_seconds, 0.0);
  EXPECT_GT(stats.value().flight_records, 0u);

  const RunProfile profile = profile_run(stats.value());
  ASSERT_EQ(profile.tasks.size(), 5u);
  ASSERT_FALSE(profile.critical_path.empty());
  // The reduce task depends on every tile, so the measured critical path
  // must end on it.
  const TaskProfile& last =
      profile.tasks[static_cast<std::size_t>(profile.critical_path.back().task)];
  EXPECT_EQ(last.label, "reduce");

  const SchedulePlan plan = simulate_schedule(graph.value(), platform.value());
  const ModelComparison cmp = diff_against_plan(profile, plan, graph.value());
  bool saw_dgemm = false;
  for (const ModelComparison::NameDelta& d : cmp.tasks) {
    if (d.name == "dgemm") {
      saw_dgemm = true;
      EXPECT_EQ(d.modeled_tasks, 4u);
      EXPECT_EQ(d.measured_tasks, 4u);
    }
  }
  EXPECT_TRUE(saw_dgemm);
}

}  // namespace
}  // namespace analysis
