#include <gtest/gtest.h>

#include "cascabel/compile_plan.hpp"
#include "discovery/presets.hpp"
#include "pdl/well_known.hpp"

namespace cascabel {
namespace {

using pdl::discovery::cell_be_platform;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

TEST(CompilePlan, CpuOnlyPlatformUsesOneCompiler) {
  const CompilePlan plan =
      derive_compile_plan(paper_platform_starpu_cpu(), "gen.cpp", "prog");
  // Master declares COMPILER=gcc; the x86_core workers inherit it.
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].compiler, "gcc");
  EXPECT_EQ(plan.steps[0].source, "gen.cpp");
  EXPECT_EQ(plan.link.output, "prog");
  EXPECT_EQ(plan.link.inputs.size(), 1u);
}

TEST(CompilePlan, GpuPlatformAddsNvccStep) {
  const CompilePlan plan =
      derive_compile_plan(paper_platform_starpu_2gpu(), "gen.cpp", "prog");
  // gcc (master + cpu cores, via COMPILER) + nvcc (gpu arch default).
  ASSERT_EQ(plan.steps.size(), 2u);
  std::vector<std::string> compilers = {plan.steps[0].compiler,
                                        plan.steps[1].compiler};
  EXPECT_NE(std::find(compilers.begin(), compilers.end(), "gcc"), compilers.end());
  EXPECT_NE(std::find(compilers.begin(), compilers.end(), "nvcc"), compilers.end());
}

TEST(CompilePlan, CellPlatformUsesXlcAndSpuGcc) {
  const CompilePlan plan = derive_compile_plan(cell_be_platform(), "gen.cpp", "prog");
  // Master declares xlc; the SPE workers' own architecture selects the SPU
  // cross-compiler (the paper names "gcc-spu" explicitly in §IV-C step 4).
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].compiler, "xlc");
  EXPECT_EQ(plan.steps[1].compiler, "spu-gcc");
}

TEST(CompilePlan, ExplicitWorkerCompilerOverridesInheritance) {
  pdl::Platform p("t");
  pdl::ProcessingUnit* m = p.add_master("m");
  m->descriptor().add(pdl::props::kCompiler, "gcc");
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "spe", 8);
  w->descriptor().add(pdl::props::kArchitecture, "spe");
  w->descriptor().add(pdl::props::kCompiler, "spu-gcc");
  const CompilePlan plan = derive_compile_plan(p, "gen.cpp", "prog");
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[1].compiler, "spu-gcc");
  EXPECT_EQ(plan.steps[1].for_pu, "spe");
}

TEST(CompilePlan, DefaultCompilerByArchitecture) {
  pdl::Platform p("t");
  pdl::ProcessingUnit* m = p.add_master("m");  // no COMPILER, no ARCH -> gcc
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "g");
  w->descriptor().add(pdl::props::kArchitecture, "gpu");
  const CompilePlan plan = derive_compile_plan(p, "gen.cpp", "prog");
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].compiler, "gcc");
  EXPECT_EQ(plan.steps[1].compiler, "nvcc");
}

TEST(CompilePlan, MakefileRendering) {
  const CompilePlan plan =
      derive_compile_plan(paper_platform_starpu_2gpu(), "gen.cpp", "dgemm_prog");
  const std::string makefile = plan.to_makefile();
  EXPECT_NE(makefile.find("all: dgemm_prog"), std::string::npos);
  EXPECT_NE(makefile.find("nvcc"), std::string::npos);
  EXPECT_NE(makefile.find("-c gen.cpp"), std::string::npos);
  EXPECT_NE(makefile.find("-lstarvm"), std::string::npos);
}

TEST(CompilePlan, ScriptRendering) {
  const CompilePlan plan =
      derive_compile_plan(paper_platform_starpu_cpu(), "gen.cpp", "prog");
  const std::string script = plan.to_script();
  EXPECT_NE(script.find("#!/bin/sh"), std::string::npos);
  EXPECT_NE(script.find("set -e"), std::string::npos);
  EXPECT_NE(script.find("-o prog"), std::string::npos);
}

}  // namespace
}  // namespace cascabel
