#include <gtest/gtest.h>

#include "discovery/presets.hpp"
#include "pdl/catalog.hpp"
#include "pdl/serializer.hpp"
#include "util/string_util.hpp"

namespace pdl {
namespace {

Catalog preset_catalog() {
  Catalog catalog;
  catalog.add(discovery::paper_platform_single());
  catalog.add(discovery::paper_platform_starpu_cpu());
  catalog.add(discovery::paper_platform_starpu_2gpu());
  catalog.add(discovery::cell_be_platform());
  catalog.add(discovery::hierarchical_hybrid_platform());
  return catalog;
}

TEST(Catalog, AddAndFindByName) {
  Catalog catalog = preset_catalog();
  EXPECT_EQ(catalog.size(), 5u);
  EXPECT_NE(catalog.find("cell-be"), nullptr);
  EXPECT_EQ(catalog.find("not-there"), nullptr);
  const auto names = catalog.names();
  EXPECT_EQ(names.front(), "testbed-single");
}

TEST(Catalog, AddReplacesSameName) {
  Catalog catalog;
  catalog.add(discovery::paper_platform_single());
  Platform replacement("testbed-single");
  replacement.add_master("different");
  catalog.add(std::move(replacement));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.find("testbed-single")->masters()[0]->id(), "different");
}

TEST(Catalog, UnnamedPlatformsGetSyntheticNames) {
  Catalog catalog;
  Platform anonymous;
  anonymous.add_master("m");
  catalog.add(std::move(anonymous));
  EXPECT_NE(catalog.find("platform-0"), nullptr);
}

TEST(Catalog, MatchingFiltersByPattern) {
  Catalog catalog = preset_catalog();
  // GPU-bearing platforms: testbed-2gpu and the hierarchical one.
  EXPECT_EQ(catalog.matching("M[W(ARCHITECTURE=gpu)]").size(), 2u);
  EXPECT_EQ(catalog.matching("M[W(ARCHITECTURE=spe)x8]").size(), 1u);
  EXPECT_EQ(catalog.matching("M").size(), 5u);
  EXPECT_TRUE(catalog.matching("M[W(ARCHITECTURE=fpga)]").empty());
}

TEST(Catalog, BestMatchPicksTightestPlatform) {
  Catalog catalog = preset_catalog();
  // Both gpu platforms match; the hierarchical one has fewer total PUs
  // (13) than the testbed (1 + 8 + 2 = 11)... compare actual counts.
  const Platform* best = catalog.best_match("M[W(ARCHITECTURE=gpu)]");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->name(), "testbed-starpu-2gpu");  // 11 < 13

  // Asking for 8 x86 cores excludes the hierarchical platform.
  const Platform* cores = catalog.best_match("M[W(ARCHITECTURE=x86_core)x8]");
  ASSERT_NE(cores, nullptr);
  EXPECT_EQ(cores->name(), "testbed-starpu");
  EXPECT_EQ(catalog.best_match("M[Wx100]"), nullptr);
}

TEST(Catalog, AddDirectoryLoadsShippedDescriptors) {
  // The repository ships the preset platforms as PDL files in platforms/.
  Catalog catalog;
  std::vector<std::string> errors;
  const std::size_t added =
      catalog.add_directory(std::string(PDL_SOURCE_DIR) + "/platforms", &errors);
  EXPECT_EQ(added, 6u) << util::join(errors, "; ");
  EXPECT_NE(catalog.find("testbed-starpu-2gpu"), nullptr);
  EXPECT_NE(catalog.find("cell-be"), nullptr);
  EXPECT_NE(catalog.find("manycore-1k"), nullptr);
  // They are real PDL: pattern queries work on the loaded set.
  EXPECT_EQ(catalog.matching("M[W(ARCHITECTURE=gpu)x2]").size(), 1u);
}

TEST(Catalog, AddDirectoryReportsMissingDir) {
  Catalog catalog;
  std::vector<std::string> errors;
  EXPECT_EQ(catalog.add_directory("/no/such/dir", &errors), 0u);
  EXPECT_EQ(errors.size(), 1u);
}

TEST(Catalog, AddFileRoundTrip) {
  const std::string path = testing::TempDir() + "/catalog_entry.xml";
  ASSERT_TRUE(
      util::write_file(path, serialize(discovery::paper_platform_starpu_2gpu())));
  Catalog catalog;
  auto status = catalog.add_file(path);
  ASSERT_TRUE(status.ok()) << status.error().str();
  EXPECT_NE(catalog.find("testbed-starpu-2gpu"), nullptr);

  EXPECT_FALSE(catalog.add_file("/missing.xml").ok());
  const std::string bad = testing::TempDir() + "/bad_entry.xml";
  ASSERT_TRUE(util::write_file(bad, "<Master><Worker/></Master>"));
  EXPECT_FALSE(catalog.add_file(bad).ok());  // missing ids -> error diags
}

}  // namespace
}  // namespace pdl
