#include <gtest/gtest.h>

#include "pdl/parser.hpp"
#include "pdl/query.hpp"
#include "pdl/serializer.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

// Paper Listing 1: x86 Master with one GPU Worker and an rDMA interconnect.
constexpr const char* kListing1 = R"(<?xml version="1.0"?>
<Master id="0" quantity="1">
  <PUDescriptor>
    <Property fixed="true">
      <name>ARCHITECTURE</name>
      <value>x86</value>
    </Property>
  </PUDescriptor>
  <Worker quantity="1" id="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>gpu</value>
      </Property>
    </PUDescriptor>
  </Worker>
  <Interconnect type="rDMA" from="0" to="1" scheme=""/>
</Master>)";

// Paper Listing 2 fragment: extension-typed OpenCL device properties.
constexpr const char* kListing2Worker = R"(
<Platform name="l2" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
          xmlns:ocl="urn:pdl:ext:opencl">
<Master id="0">
 <Worker id="1">
  <PUDescriptor>
    <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
      <ocl:name>DEVICE_NAME</ocl:name>
      <ocl:value>GeForce GTX 480</ocl:value>
    </Property>
    <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
      <ocl:name>MAX_COMPUTE_UNITS</ocl:name>
      <ocl:value>15</ocl:value>
    </Property>
    <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
      <ocl:name>GLOBAL_MEM_SIZE</ocl:name>
      <ocl:value unit="kB">1572864</ocl:value>
    </Property>
    <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
      <ocl:name>LOCAL_MEM_SIZE</ocl:name>
      <ocl:value unit="kB">48</ocl:value>
    </Property>
  </PUDescriptor>
 </Worker>
</Master>
</Platform>)";

TEST(PdlParser, ParsesPaperListing1) {
  Diagnostics diags;
  auto platform = parse_platform(kListing1, diags);
  ASSERT_TRUE(platform.ok()) << platform.error().str();
  EXPECT_FALSE(has_errors(diags));

  const Platform& p = platform.value();
  ASSERT_EQ(p.masters().size(), 1u);
  const ProcessingUnit& master = *p.masters()[0];
  EXPECT_EQ(master.id(), "0");
  EXPECT_EQ(master.quantity(), 1);
  EXPECT_EQ(master.descriptor().get("ARCHITECTURE"), "x86");
  ASSERT_EQ(master.children().size(), 1u);

  const ProcessingUnit& worker = *master.children()[0];
  EXPECT_EQ(worker.kind(), PuKind::kWorker);
  EXPECT_EQ(worker.id(), "1");
  EXPECT_EQ(worker.descriptor().get("ARCHITECTURE"), "gpu");

  ASSERT_EQ(master.interconnects().size(), 1u);
  const Interconnect& ic = master.interconnects()[0];
  EXPECT_EQ(ic.type, "rDMA");
  EXPECT_EQ(ic.from, "0");
  EXPECT_EQ(ic.to, "1");
}

TEST(PdlParser, ParsesPaperListing2ExtensionProperties) {
  Diagnostics diags;
  auto platform = parse_platform(kListing2Worker, diags);
  ASSERT_TRUE(platform.ok()) << platform.error().str();

  const ProcessingUnit* worker = find_pu(platform.value(), "1");
  ASSERT_NE(worker, nullptr);
  const Descriptor& d = worker->descriptor();
  ASSERT_EQ(d.size(), 4u);

  const Property* name = d.find("DEVICE_NAME");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->value, "GeForce GTX 480");
  EXPECT_FALSE(name->fixed);
  EXPECT_EQ(name->xsi_type, "ocl:oclDevicePropertyType");

  const Property* mem = d.find("GLOBAL_MEM_SIZE");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->unit, "kB");
  EXPECT_EQ(mem->as_bytes(), 1572864LL * 1024);  // exactly 1.5 GB

  // Namespace declarations survive.
  bool found_ocl = false;
  for (const auto& [prefix, uri] : platform.value().namespaces()) {
    if (prefix == "ocl") {
      found_ocl = true;
      EXPECT_EQ(uri, "urn:pdl:ext:opencl");
    }
  }
  EXPECT_TRUE(found_ocl);
}

TEST(PdlParser, ParsesPlatformWrapperWithMultipleMasters) {
  Diagnostics diags;
  auto platform = parse_platform(R"(
    <Platform name="multi" version="1.2">
      <Master id="a"/>
      <Master id="b" quantity="2"/>
    </Platform>)", diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_EQ(platform.value().name(), "multi");
  EXPECT_EQ(platform.value().schema_version(), "1.2");
  EXPECT_EQ(platform.value().masters().size(), 2u);
}

TEST(PdlParser, ParsesLogicGroupAttributeBothForms) {
  Diagnostics diags;
  auto platform = parse_platform(R"(
    <Master id="0">
      <Worker id="w">
        <LogicGroupAttribute group="gpu"/>
        <LogicGroupAttribute>execset01</LogicGroupAttribute>
      </Worker>
    </Master>)", diags);
  ASSERT_TRUE(platform.ok());
  const ProcessingUnit* w = find_pu(platform.value(), "w");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->logic_groups().size(), 2u);
  EXPECT_EQ(w->logic_groups()[0], "gpu");
  EXPECT_EQ(w->logic_groups()[1], "execset01");
}

TEST(PdlParser, ParsesMemoryRegions) {
  Diagnostics diags;
  auto platform = parse_platform(R"(
    <Master id="0">
      <MemoryRegion id="ram">
        <MRDescriptor>
          <Property fixed="true"><name>SIZE</name><value unit="kB">1024</value></Property>
        </MRDescriptor>
      </MemoryRegion>
    </Master>)", diags);
  ASSERT_TRUE(platform.ok());
  const ProcessingUnit& m = *platform.value().masters()[0];
  ASSERT_EQ(m.memory_regions().size(), 1u);
  EXPECT_EQ(m.memory_regions()[0].id, "ram");
  EXPECT_EQ(m.memory_regions()[0].descriptor.find("SIZE")->as_bytes(), 1024 * 1024);
}

TEST(PdlParser, HybridHierarchiesParse) {
  Diagnostics diags;
  auto platform = parse_platform(R"(
    <Master id="0">
      <Hybrid id="h0">
        <Worker id="w0" quantity="4"/>
      </Hybrid>
    </Master>)", diags);
  ASSERT_TRUE(platform.ok());
  const ProcessingUnit* h = find_pu(platform.value(), "h0");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind(), PuKind::kHybrid);
  EXPECT_EQ(h->children().size(), 1u);
}

TEST(PdlParser, ReportsMissingIds) {
  Diagnostics diags;
  auto platform = parse_platform("<Master><Worker id=\"w\"/></Master>", diags);
  ASSERT_TRUE(platform.ok());  // parses, but with diagnostics
  EXPECT_TRUE(has_errors(diags));
}

TEST(PdlParser, ReportsInvalidQuantity) {
  Diagnostics diags;
  auto platform = parse_platform("<Master id=\"0\" quantity=\"zero\"/>", diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_TRUE(has_errors(diags));
}

TEST(PdlParser, ReportsQuantityOverflowAndNonPositive) {
  // quantity is stored as int; values past INT_MAX must be rejected, not
  // silently wrapped into a bogus (possibly negative) device count.
  for (const char* bad : {"9999999999", "4294967296", "0", "-2"}) {
    Diagnostics diags;
    auto platform = parse_platform(
        std::string("<Master id=\"0\" quantity=\"") + bad + "\"/>", diags);
    ASSERT_TRUE(platform.ok()) << bad;
    EXPECT_TRUE(has_errors(diags)) << bad;
  }
  // Large-but-representable quantities are a lint concern (A106), not a
  // parse error.
  Diagnostics diags;
  auto platform = parse_platform("<Master id=\"0\" quantity=\"65535\"/>", diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_FALSE(has_errors(diags));
}

TEST(PdlParser, RejectsNonPdlRoot) {
  Diagnostics diags;
  auto platform = parse_platform("<Banana/>", diags);
  EXPECT_FALSE(platform.ok());
}

TEST(PdlParser, RejectsTopLevelWorkerInPlatform) {
  Diagnostics diags;
  auto platform = parse_platform("<Platform><Worker id=\"w\"/></Platform>", diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_TRUE(has_errors(diags));
}

TEST(PdlParser, WarnsOnUnknownElements) {
  Diagnostics diags;
  auto platform = parse_platform(
      "<Master id=\"0\"><Gadget/></Master>", diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_FALSE(has_errors(diags));
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
}

TEST(PdlParser, PropertyWithoutNameIsError) {
  Diagnostics diags;
  auto platform = parse_platform(
      "<Master id=\"0\"><PUDescriptor><Property><value>x</value></Property>"
      "</PUDescriptor></Master>",
      diags);
  ASSERT_TRUE(platform.ok());
  EXPECT_TRUE(has_errors(diags));
}

TEST(PdlParser, RoundTripThroughSerializer) {
  Diagnostics diags;
  auto first = parse_platform(kListing1, diags);
  ASSERT_TRUE(first.ok());

  SerializeOptions options;
  options.bare_master_root = true;
  const std::string serialized = serialize(first.value(), options);
  // A bare-master document round-trips to a bare <Master> root.
  EXPECT_NE(serialized.find("<Master"), std::string::npos);

  Diagnostics diags2;
  auto second = parse_platform(serialized, diags2);
  ASSERT_TRUE(second.ok()) << second.error().str();
  EXPECT_FALSE(has_errors(diags2));

  const ProcessingUnit* worker = find_pu(second.value(), "1");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->descriptor().get("ARCHITECTURE"), "gpu");
  ASSERT_EQ(second.value().masters()[0]->interconnects().size(), 1u);
  EXPECT_EQ(second.value().masters()[0]->interconnects()[0].type, "rDMA");
}

TEST(PdlParser, ExtensionRoundTripKeepsTypesUnitsFixedness) {
  Diagnostics diags;
  auto first = parse_platform(kListing2Worker, diags);
  ASSERT_TRUE(first.ok());
  const std::string serialized = serialize(first.value());

  Diagnostics diags2;
  auto second = parse_platform(serialized, diags2);
  ASSERT_TRUE(second.ok()) << second.error().str();
  const ProcessingUnit* w = find_pu(second.value(), "1");
  ASSERT_NE(w, nullptr);
  const Property* mem = w->descriptor().find("GLOBAL_MEM_SIZE");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->unit, "kB");
  EXPECT_FALSE(mem->fixed);
  EXPECT_EQ(mem->xsi_type, "ocl:oclDevicePropertyType");
}

TEST(PdlParser, ParseFileFailsGracefully) {
  Diagnostics diags;
  auto platform = parse_platform_file("/no/such/file.xml", diags);
  EXPECT_FALSE(platform.ok());
}

}  // namespace
}  // namespace pdl
