// Tests for the cross-layer static analyzer (src/analysis): the rule
// catalog, the A1xx platform lint, the A3xx program-platform matching, the
// A4xx task-graph hazards, and the text/JSON reports — including one golden
// pass over every shipped platform description.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "annot/annotated_program.hpp"
#include "cascabel/repository.hpp"
#include "discovery/presets.hpp"
#include "json_checker.hpp"
#include "pdl/extension.hpp"
#include "pdl/parser.hpp"
#include "pdl/validate.hpp"
#include "pdl/well_known.hpp"

namespace analysis {
namespace {

const pdl::Diagnostic* find_finding(const pdl::Diagnostics& diags,
                                    std::string_view rule,
                                    std::string_view message_part = "") {
  for (const auto& d : diags) {
    if (d.rule == rule &&
        (message_part.empty() || d.message.find(message_part) != std::string::npos)) {
      return &d;
    }
  }
  return nullptr;
}

std::size_t count_rule(const pdl::Diagnostics& diags, std::string_view rule) {
  std::size_t n = 0;
  for (const auto& d : diags) n += d.rule == rule ? 1 : 0;
  return n;
}

pdl::Diagnostics lint_platform(const pdl::Platform& platform,
                               const AnalysisOptions& options = {}) {
  pdl::Diagnostics diags;
  analyze_platform(platform, options, diags);
  return diags;
}

// --- Rule catalog ------------------------------------------------------------

TEST(RuleCatalog, ListsEveryRuleInIdOrder) {
  const auto& catalog = rule_catalog();
  ASSERT_GE(catalog.size(), 17u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string_view(catalog[i - 1].id), std::string_view(catalog[i].id));
  }
  for (const RuleInfo& info : catalog) {
    EXPECT_NE(info.summary, nullptr);
    EXPECT_NE(std::string_view(info.summary), "");
  }
}

TEST(RuleCatalog, FindRuleAcceptsFullIdAndBareNumber) {
  const RuleInfo* full = find_rule(kDeadVariant);
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(std::string_view(full->id), kDeadVariant);
  EXPECT_EQ(find_rule("A301"), full);
  EXPECT_EQ(find_rule("A999"), nullptr);
  EXPECT_EQ(find_rule(""), nullptr);
}

TEST(RuleCatalog, OptionsControlEnablementAndSeverity) {
  AnalysisOptions options;
  EXPECT_TRUE(rule_enabled(options, kDeadVariant));
  options.disabled.insert(kDeadVariant);
  EXPECT_FALSE(rule_enabled(options, kDeadVariant));

  EXPECT_EQ(effective_severity(options, kArityMismatch, pdl::Severity::kError),
            pdl::Severity::kError);
  options.severity_overrides[kArityMismatch] = pdl::Severity::kInfo;
  EXPECT_EQ(effective_severity(options, kArityMismatch, pdl::Severity::kError),
            pdl::Severity::kInfo);
}

// --- Layer (a): platform lint ------------------------------------------------

TEST(AnalyzePlatform, A101_FlagsWorkerMemoryWithoutInterconnectPath) {
  pdl::Platform p("island");
  pdl::ProcessingUnit* m = p.add_master("m0");
  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "w0");
  pdl::MemoryRegion mr;
  mr.id = "mr_w0";
  w->memory_regions().push_back(mr);

  const pdl::Diagnostics diags = lint_platform(p);
  const pdl::Diagnostic* d = find_finding(diags, kUnreachableWorkerMemory, "mr_w0");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);

  // Declaring the link (either direction) resolves the finding.
  pdl::Interconnect ic;
  ic.type = "PCIe";
  ic.from = "m0";
  ic.to = "w0";
  m->interconnects().push_back(ic);
  EXPECT_EQ(find_finding(lint_platform(p), kUnreachableWorkerMemory), nullptr);
}

TEST(AnalyzePlatform, A101_FollowsMultiHopInterconnects) {
  pdl::Platform p("hops");
  pdl::ProcessingUnit* m = p.add_master("m0");
  pdl::ProcessingUnit* h = m->add_child(pdl::PuKind::kHybrid, "h0");
  pdl::ProcessingUnit* w = h->add_child(pdl::PuKind::kWorker, "w0");
  pdl::MemoryRegion mr;
  mr.id = "mr_w0";
  w->memory_regions().push_back(mr);
  // m0 <-> h0 <-> w0: reachable through two hops.
  pdl::Interconnect a;
  a.type = "QPI";
  a.from = "m0";
  a.to = "h0";
  m->interconnects().push_back(a);
  pdl::Interconnect b;
  b.type = "PCIe";
  b.from = "h0";
  b.to = "w0";
  h->interconnects().push_back(b);
  EXPECT_EQ(find_finding(lint_platform(p), kUnreachableWorkerMemory), nullptr);
}

TEST(AnalyzePlatform, A102_FlagsIdLessAndTrailingWorkerRegions) {
  pdl::Platform p("regions");
  pdl::ProcessingUnit* m = p.add_master("m0");
  pdl::MemoryRegion anonymous;  // no id: nothing can reference it
  m->memory_regions().push_back(anonymous);

  pdl::ProcessingUnit* w = m->add_child(pdl::PuKind::kWorker, "w0");
  pdl::MemoryRegion first;
  first.id = "mr_a";
  pdl::MemoryRegion second;
  second.id = "mr_b";
  w->memory_regions().push_back(first);
  w->memory_regions().push_back(second);

  const pdl::Diagnostics diags = lint_platform(p);
  ASSERT_NE(find_finding(diags, kUnreferencedMemoryRegion, "without id"), nullptr);
  // Only the worker's second region is ignored by the bridge.
  ASSERT_NE(find_finding(diags, kUnreferencedMemoryRegion, "mr_b"), nullptr);
  EXPECT_EQ(find_finding(diags, kUnreferencedMemoryRegion, "mr_a"), nullptr);
}

TEST(AnalyzePlatform, A103_FlagsNonsenseWellKnownValues) {
  pdl::Platform p("values");
  pdl::ProcessingUnit* m = p.add_master("m0");
  m->descriptor().add(pdl::props::kCores, "-3");
  m->descriptor().add(pdl::props::kFrequencyMhz, "fast");
  // Unfixed empty values are legitimate placeholders.
  pdl::Property pending;
  pending.name = pdl::props::kPeakGflops;
  m->descriptor().add(pending);

  const pdl::Diagnostics diags = lint_platform(p);
  EXPECT_NE(find_finding(diags, kPropertySanity, "'CORES'"), nullptr);
  EXPECT_NE(find_finding(diags, kPropertySanity, "'FREQUENCY_MHZ'"), nullptr);
  EXPECT_EQ(count_rule(diags, kPropertySanity), 2u);
}

TEST(AnalyzePlatform, A103_AcceptsSaneValues) {
  pdl::Platform p("sane");
  pdl::ProcessingUnit* m = p.add_master("m0");
  m->descriptor().add(pdl::props::kCores, "8");
  m->descriptor().add(pdl::props::kFrequencyMhz, "2660");
  pdl::MemoryRegion mr;
  mr.id = "mr";
  pdl::Property size;
  size.name = pdl::props::kSize;
  size.value = "1024";
  size.unit = "kB";
  mr.descriptor.add(size);
  m->memory_regions().push_back(mr);
  EXPECT_EQ(find_finding(lint_platform(p), kPropertySanity), nullptr);
}

TEST(AnalyzePlatform, A104_FlagsConflictingDuplicateProperties) {
  pdl::Platform p("conflict");
  pdl::ProcessingUnit* m = p.add_master("m0");
  m->descriptor().add(pdl::props::kArchitecture, "x86");
  m->descriptor().add(pdl::props::kArchitecture, "arm");

  const pdl::Diagnostics diags = lint_platform(p);
  const pdl::Diagnostic* d =
      find_finding(diags, kDescriptorConsistency, "conflicting values");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
}

TEST(AnalyzePlatform, A104_MixedFixedUnfixedIsOnlyAWarning) {
  pdl::Platform p("fixedness");
  pdl::ProcessingUnit* m = p.add_master("m0");
  pdl::Property fixed;
  fixed.name = "MODEL";
  fixed.value = "X";
  fixed.fixed = true;
  m->descriptor().add(fixed);
  pdl::Property unfixed;
  unfixed.name = "MODEL";
  unfixed.value = "X";
  unfixed.fixed = false;
  m->descriptor().add(unfixed);

  const pdl::Diagnostics diags = lint_platform(p);
  const pdl::Diagnostic* d =
      find_finding(diags, kDescriptorConsistency, "fixed and unfixed");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
}

TEST(AnalyzePlatform, A105_RequiresDeclaredExtensionNamespaces) {
  pdl::Platform p("ext");
  pdl::ProcessingUnit* m = p.add_master("m0");
  pdl::Property ext;
  ext.name = "DEVICE_NAME";
  ext.value = "Imaginary 9000";
  ext.xsi_type = "ghost:devicePropertyType";
  m->descriptor().add(ext);

  const pdl::Diagnostics diags = lint_platform(p);
  const pdl::Diagnostic* d =
      find_finding(diags, kUndeclaredExtensionNamespace, "'ghost'");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);

  p.declare_namespace("ghost", "urn:pdl:ext:ghost");
  EXPECT_EQ(find_finding(lint_platform(p), kUndeclaredExtensionNamespace), nullptr);
}

TEST(AnalyzePlatform, A106_FlagsQuantitiesAboveSanityThreshold) {
  pdl::Platform p("huge");
  pdl::ProcessingUnit* m = p.add_master("m0");
  m->add_child(pdl::PuKind::kWorker, "fleet", 1088);   // manycore-scale: fine
  m->add_child(pdl::PuKind::kWorker, "typo", 70000);   // above 65536

  const pdl::Diagnostics diags = lint_platform(p);
  const pdl::Diagnostic* d = find_finding(diags, kQuantitySanity, "'typo'");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
  EXPECT_EQ(count_rule(diags, kQuantitySanity), 1u);
}

TEST(AnalyzePlatform, DisabledRulesAndOverridesApply) {
  pdl::Platform p("opts");
  pdl::ProcessingUnit* m = p.add_master("m0");
  m->descriptor().add(pdl::props::kCores, "zero");

  AnalysisOptions off;
  off.disabled.insert(kPropertySanity);
  EXPECT_TRUE(lint_platform(p, off).empty());

  AnalysisOptions promote;
  promote.severity_overrides[kPropertySanity] = pdl::Severity::kError;
  const pdl::Diagnostics diags = lint_platform(p, promote);
  const pdl::Diagnostic* d = find_finding(diags, kPropertySanity);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
}

// --- Layer (b): program-platform matching ------------------------------------

struct ParsedProgram {
  cascabel::AnnotatedProgram program;
  cascabel::TaskRepository repository = cascabel::TaskRepository::with_defaults();
};

ParsedProgram parse_program(std::string_view source) {
  pdl::Diagnostics diags;
  auto result = cascabel::parse_annotated_source(source, "prog.cpp", diags);
  EXPECT_TRUE(result.ok()) << (diags.empty() ? "" : diags.front().str());
  ParsedProgram out;
  out.program = std::move(result).value();
  EXPECT_TRUE(out.repository.register_program(out.program));
  return out;
}

pdl::Diagnostics analyze_against(const ParsedProgram& parsed,
                                 const pdl::Platform& target,
                                 const AnalysisOptions& options = {}) {
  pdl::Diagnostics diags;
  analyze_program(parsed.program, parsed.repository, target, options, diags);
  return diags;
}

constexpr const char* kTwoVariantProgram = R"(
#pragma cascabel task : x86 : Ivecadd : vecadd_cpu : ( A: readwrite, B: read )
void vecadd_cpu_impl(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}
#pragma cascabel task : cell : Ivecadd : vecadd_spe : ( A: readwrite, B: read )
void vecadd_spe_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
int main() {
  const int N = 64;
  double A[64] = {0};
  double B[64] = {0};
#pragma cascabel execute Ivecadd : cpu (A:BLOCK:N, B:BLOCK:N)
  vecadd_cpu_impl(A, B, N);
  return 0;
}
)";

TEST(AnalyzeProgram, A301_FlagsVariantsNoTargetCanSelect) {
  const ParsedProgram parsed = parse_program(kTwoVariantProgram);
  // The testbed has x86 masters and gpu workers but no SPEs: the cell
  // variant is dead there.
  const pdl::Platform target = pdl::discovery::paper_platform_starpu_2gpu();
  const pdl::Diagnostics diags = analyze_against(parsed, target);

  const pdl::Diagnostic* dead = find_finding(diags, kDeadVariant, "vecadd_spe");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->where, "Ivecadd");
  EXPECT_EQ(dead->loc.file, "prog.cpp");
  EXPECT_GT(dead->loc.line, 0);  // points at the pragma line
  EXPECT_EQ(find_finding(diags, kDeadVariant, "vecadd_cpu"), nullptr);

  // On the Cell platform both variants are live ("x86" matches any Master).
  const pdl::Diagnostics on_cell =
      analyze_against(parsed, pdl::discovery::cell_be_platform());
  EXPECT_EQ(find_finding(on_cell, kDeadVariant), nullptr);
}

TEST(AnalyzeProgram, A302_FlagsExecuteSitesWithNoUsableVariant) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : cell : Ispe : spe_only : ( A: readwrite )
void spe_only_impl(double *A, int n) { (void)A; (void)n; }
int main() {
  const int N = 8;
  double A[8] = {0};
#pragma cascabel execute Ispe : spe (A:BLOCK:N)
  spe_only_impl(A, N);
  return 0;
}
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kNoExecutableVariant, "Ispe");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  EXPECT_GT(d->loc.line, 0);
}

TEST(AnalyzeProgram, A303_FlagsCallArityAgainstFunctionSignature) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite, B: read )
void v1_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
int main() {
  double A[8] = {0};
#pragma cascabel execute Iv : cpu (A:BLOCK:8)
  v1_impl(A, A);
  return 0;
}
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kArityMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("2 argument(s)"), std::string::npos);
  EXPECT_NE(d->message.find("declares 3"), std::string::npos);
}

TEST(AnalyzeProgram, A304_FlagsVariantsWithConflictingSignatures) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite, B: read )
void v1_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
#pragma cascabel task : cuda : Iv : v2 : ( A: read, B: read )
void v2_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
int main() { return 0; }
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kVariantSignatureConflict, "v2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
}

TEST(AnalyzeProgram, A305_FlagsDistributionsNamingUnknownParameters) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite )
void v1_impl(double *A, int n) { (void)A; (void)n; }
int main() {
  const int N = 8;
  double A[8] = {0};
#pragma cascabel execute Iv : cpu (Z:BLOCK:N)
  v1_impl(A, N);
  return 0;
}
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kUnknownDistributionParam, "'Z'");
  ASSERT_NE(d, nullptr);
  // The size expression N is not a parameter reference and must not trip it.
  EXPECT_EQ(count_rule(diags, kUnknownDistributionParam), 1u);
}

TEST(AnalyzeProgram, A306_FlagsExecutionGroupsAbsentFromTarget) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite )
void v1_impl(double *A, int n) { (void)A; (void)n; }
int main() {
  const int N = 8;
  double A[8] = {0};
#pragma cascabel execute Iv : warp9 (A:BLOCK:N)
  v1_impl(A, N);
  return 0;
}
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kUnknownExecutionGroup, "'warp9'");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kWarning);
}

TEST(AnalyzeProgram, A406_FlagsInterfacesNothingSubmits) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iorphan : orphan1 : ( A: readwrite )
void orphan_impl(double *A, int n) { (void)A; (void)n; }
int main() { return 0; }
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kNeverSubmittedTask, "Iorphan");
  ASSERT_NE(d, nullptr);
  EXPECT_GT(d->loc.line, 0);  // the variant's pragma line
}

TEST(AnalyzeProgram, WellFormedProgramIsCleanOnMatchingTarget) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite, B: read )
void v1_impl(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}
int main() {
  const int N = 8;
  double A[8] = {0};
  double B[8] = {0};
#pragma cascabel execute Iv : cpu (A:BLOCK:N, B:BLOCK:N)
  v1_impl(A, B, N);
  return 0;
}
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  EXPECT_TRUE(diags.empty()) << diags.front().str();
}

// --- Layer (c): task-graph extraction and hazards ----------------------------

TEST(GraphFromProgram, MapsCallSitesToTasksAndArgumentsToBuffers) {
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : x86 : Iv : v1 : ( A: readwrite, B: read )
void v1_impl(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
int main() {
  const int N = 8;
  double A[8] = {0};
  double B[8] = {0};
#pragma cascabel execute Iv : cpu (A:BLOCK:N, B:BLOCK:N)
  v1_impl(A, B, N);
#pragma cascabel execute Iv : cpu (B:BLOCK:N, A:BLOCK:N)
  v1_impl(B, A, N);
  return 0;
}
)");
  const starvm::TaskGraph graph =
      graph_from_program(parsed.program, parsed.repository);
  ASSERT_EQ(graph.tasks().size(), 2u);
  // Distinct argument expressions: A, B, N.
  EXPECT_EQ(graph.buffers().size(), 3u);

  // Task 0 read-writes A and reads B; the scalar N is a read.
  const starvm::GraphTask& t0 = graph.tasks()[0];
  ASSERT_EQ(t0.accesses.size(), 3u);
  EXPECT_EQ(t0.accesses[0].mode, starvm::Access::kReadWrite);
  EXPECT_EQ(t0.accesses[1].mode, starvm::Access::kRead);
  EXPECT_EQ(t0.accesses[2].mode, starvm::Access::kRead);
  // Task 1 swaps the operands: it writes B and reads A, sharing buffers.
  const starvm::GraphTask& t1 = graph.tasks()[1];
  EXPECT_EQ(t1.accesses[0].buffer, t0.accesses[1].buffer);
  EXPECT_EQ(t1.accesses[0].mode, starvm::Access::kReadWrite);

  // The engine would order the pair through A (WAR) and B (WAR): under the
  // default model there is no hazard to report.
  pdl::Diagnostics diags;
  analyze_task_graph(graph, {}, diags);
  EXPECT_TRUE(diags.empty());
}

starvm::TaskGraph two_writer_graph() {
  starvm::TaskGraph g;
  const int buf = g.add_buffer("A", 1024);
  g.add_task("w0", {{buf, starvm::Access::kWrite}});
  g.add_task("w1", {{buf, starvm::Access::kWrite}});
  return g;
}

TEST(AnalyzeTaskGraph, A401_SameBufferWriteWriteOnlyUnderRelaxed) {
  const starvm::TaskGraph g = two_writer_graph();

  // Default model: the engine infers the WAW edge itself — no finding.
  pdl::Diagnostics strict;
  analyze_task_graph(g, {}, strict);
  EXPECT_EQ(find_finding(strict, kUnorderedWriteWrite), nullptr);

  AnalysisOptions options;
  options.relaxed = true;
  pdl::Diagnostics diags;
  analyze_task_graph(g, options, diags);
  const pdl::Diagnostic* d = find_finding(diags, kUnorderedWriteWrite, "'A'");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  EXPECT_EQ(d->where, "w0 <-> w1");
}

TEST(AnalyzeTaskGraph, A401_SilencedByDeclaredOrdering) {
  starvm::TaskGraph g;
  const int buf = g.add_buffer("A", 1024);
  const int w0 = g.add_task("w0", {{buf, starvm::Access::kWrite}});
  g.add_task("w1", {{buf, starvm::Access::kWrite}}, {w0});
  AnalysisOptions options;
  options.relaxed = true;
  pdl::Diagnostics diags;
  analyze_task_graph(g, options, diags);
  EXPECT_EQ(find_finding(diags, kUnorderedWriteWrite), nullptr);
}

TEST(AnalyzeTaskGraph, A402_SameBufferReadWriteOnlyUnderRelaxed) {
  starvm::TaskGraph g;
  const int buf = g.add_buffer("A", 1024);
  g.add_task("w", {{buf, starvm::Access::kWrite}});
  g.add_task("r", {{buf, starvm::Access::kRead}});

  pdl::Diagnostics strict;
  analyze_task_graph(g, {}, strict);
  EXPECT_EQ(find_finding(strict, kUnorderedReadWrite), nullptr);

  AnalysisOptions options;
  options.relaxed = true;
  pdl::Diagnostics diags;
  analyze_task_graph(g, options, diags);
  const pdl::Diagnostic* d = find_finding(diags, kUnorderedReadWrite);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'w' writes"), std::string::npos);
}

TEST(AnalyzeTaskGraph, A403_ParentAndPartitionBlockUsedConcurrently) {
  starvm::TaskGraph g;
  const int parent = g.add_buffer("V", 1024);
  const std::vector<int> blocks = g.partition(parent, 2);
  g.add_task("whole", {{parent, starvm::Access::kWrite}});
  g.add_task("block", {{blocks[0], starvm::Access::kWrite}});

  // Reported even under the default model: the engine's per-handle
  // inference cannot see the overlap.
  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kPartitionAliasing);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  EXPECT_NE(d->message.find("partition block"), std::string::npos);

  // Disjoint sibling blocks are fine.
  starvm::TaskGraph ok;
  const int p2 = ok.add_buffer("V", 1024);
  const std::vector<int> b2 = ok.partition(p2, 2);
  ok.add_task("left", {{b2[0], starvm::Access::kWrite}});
  ok.add_task("right", {{b2[1], starvm::Access::kWrite}});
  pdl::Diagnostics clean;
  analyze_task_graph(ok, {}, clean);
  EXPECT_TRUE(clean.empty());
}

TEST(AnalyzeTaskGraph, A403_DoubleRegistrationOverOneAllocation) {
  starvm::TaskGraph g;
  const int h1 = g.add_buffer("data (handle 1)", 4096);
  const int h2 = g.add_buffer_at("data (handle 2)", g.buffers()[h1].base, 4096);
  g.add_task("fill_a", {{h1, starvm::Access::kWrite}});
  g.add_task("fill_b", {{h2, starvm::Access::kWrite}});

  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kPartitionAliasing);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("overlap the same memory"), std::string::npos);
}

TEST(AnalyzeTaskGraph, A403_OrderedOverlapIsNotReported) {
  starvm::TaskGraph g;
  const int parent = g.add_buffer("V", 1024);
  const std::vector<int> blocks = g.partition(parent, 2);
  const int whole = g.add_task("whole", {{parent, starvm::Access::kWrite}});
  g.add_task("block", {{blocks[0], starvm::Access::kWrite}}, {whole});
  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeTaskGraph, A404_ReportsDeclaredDependencyCycles) {
  starvm::TaskGraph g;
  g.add_task("t0", {}, {1});
  g.add_task("t1", {}, {0});
  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kDependencyCycle);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, pdl::Severity::kError);
  EXPECT_NE(d->message.find("t0 -> t1 -> t0"), std::string::npos);
}

TEST(AnalyzeTaskGraph, A405_ReportsForwardAndUnknownDependencies) {
  starvm::TaskGraph g;
  g.add_task("t0", {}, {2});   // forward: engine treats as satisfied
  g.add_task("t1", {}, {99});  // out of range entirely
  g.add_task("t2", {}, {0});   // backward: fine
  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  EXPECT_NE(find_finding(diags, kUnknownDependency, "submitted later"), nullptr);
  EXPECT_NE(find_finding(diags, kUnknownDependency, "unknown task index 99"), nullptr);
  EXPECT_EQ(count_rule(diags, kUnknownDependency), 2u);
}

// --- Reports -----------------------------------------------------------------

pdl::Diagnostics sample_findings() {
  pdl::Diagnostics diags;
  pdl::add_finding(diags, pdl::Severity::kError, kDeadVariant, "variant 'x' is dead",
                   pdl::SourceLoc{"prog.cpp", 4, 0}, "Iv");
  pdl::add_finding(diags, pdl::Severity::kWarning, kUnknownExecutionGroup,
                   "group 'g' unknown", pdl::SourceLoc{"prog.cpp", 9, 0}, "Iv");
  pdl::normalize(diags);
  return diags;
}

TEST(Report, SummarizeAndTextRendering) {
  const pdl::Diagnostics diags = sample_findings();
  const ReportSummary summary = summarize(diags);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.warnings, 1u);
  EXPECT_EQ(summary.infos, 0u);

  const std::string text = render_text(diags);
  EXPECT_NE(text.find("prog.cpp:4: error: variant 'x' is dead"), std::string::npos);
  EXPECT_NE(text.find("[A301-dead-variant]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(Report, JsonIsWellFormedAndCarriesFindings) {
  const std::string json = render_json(sample_findings());
  const testjson::ParseResult parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "findings"));
  EXPECT_TRUE(testjson::contains_string(parsed, "summary"));
  EXPECT_TRUE(testjson::contains_string(parsed, kDeadVariant));
  EXPECT_TRUE(testjson::contains_string(parsed, "variant 'x' is dead"));
  EXPECT_TRUE(testjson::contains_string(parsed, "prog.cpp"));
}

TEST(Report, JsonEscapesHostileStrings) {
  pdl::Diagnostics diags;
  pdl::add_finding(diags, pdl::Severity::kWarning, "A999-test",
                   "quote \" backslash \\ newline \n done",
                   pdl::SourceLoc{"we\"ird.xml", 1, 1});
  const testjson::ParseResult parsed = testjson::parse(render_json(diags));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(
      testjson::contains_string(parsed, "quote \" backslash \\ newline \n done"));
}

TEST(Report, JsonEscapesNonAsciiAndControlCharacters) {
  pdl::Diagnostics diags;
  // UTF-8 bytes pass through verbatim (JSON is UTF-8); C0 controls must be
  // \u-escaped or the document is invalid.
  pdl::add_finding(diags, pdl::Severity::kWarning, "A999-test",
                   "caf\xc3\xa9 \xe2\x86\x92 ctrl\x01tab\tdone",
                   pdl::SourceLoc{"caf\xc3\xa9.xml", 3, 1});
  const std::string json = render_json(diags);
  const testjson::ParseResult parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(
      parsed, "caf\xc3\xa9 \xe2\x86\x92 ctrl\x01tab\tdone"));
  EXPECT_TRUE(testjson::contains_string(parsed, "caf\xc3\xa9.xml"));
  // The raw byte stream itself may not contain unescaped controls.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(Report, RenderersPropagateLineAndColumn) {
  pdl::Diagnostics diags;
  pdl::add_finding(diags, pdl::Severity::kError, kPartitionAliasing,
                   "aliased ranges", pdl::SourceLoc{"prog.cpp", 12, 34}, "m");
  const std::string text = render_text(diags);
  EXPECT_NE(text.find("prog.cpp:12:34: error: aliased ranges"),
            std::string::npos);
  const std::string json = render_json(diags);
  const testjson::ParseResult parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\"col\":34"), std::string::npos);
}

TEST(Report, ParsedProgramLocReachesRenderedA3xxFindings) {
  // End-to-end: the pragma's line in the parsed source must surface in the
  // rendered report, not just in the Diagnostic struct.
  const ParsedProgram parsed = parse_program(R"(
#pragma cascabel task : cell : If : f_spe : ( A: readwrite )
void f_spe_impl(double *A, int n) { (void)A; (void)n; }
)");
  const pdl::Diagnostics diags =
      analyze_against(parsed, pdl::discovery::paper_platform_starpu_2gpu());
  const pdl::Diagnostic* d = find_finding(diags, kDeadVariant);
  ASSERT_NE(d, nullptr) << render_text(diags);
  ASSERT_GT(d->loc.line, 0);
  const std::string text = render_text(diags);
  EXPECT_NE(text.find("prog.cpp:" + std::to_string(d->loc.line)),
            std::string::npos);
}

TEST(Report, TaskGraphLocReachesRenderedA4xxFindings) {
  starvm::TaskGraph g;
  const int parent = g.add_buffer("m", 100, pdl::SourceLoc{"prog.cpp", 7, 3});
  const std::vector<int> blocks = g.partition(parent, 2);
  g.add_task("whole", {{parent, starvm::Access::kWrite}},
             {}, pdl::SourceLoc{"prog.cpp", 20, 1});
  g.add_task("block", {{blocks[0], starvm::Access::kWrite}},
             {}, pdl::SourceLoc{"prog.cpp", 21, 1});
  pdl::Diagnostics diags;
  analyze_task_graph(g, {}, diags);
  const pdl::Diagnostic* d = find_finding(diags, kPartitionAliasing);
  ASSERT_NE(d, nullptr) << render_text(diags);
  EXPECT_EQ(d->loc.file, "prog.cpp");
  EXPECT_GT(d->loc.line, 0);
  EXPECT_NE(render_text(diags).find("prog.cpp:"), std::string::npos);
}

TEST(Report, ExitCodeContract) {
  pdl::Diagnostics clean;
  EXPECT_EQ(exit_code(clean, false), 0);
  EXPECT_EQ(exit_code(clean, true), 0);

  pdl::Diagnostics warn;
  pdl::add_warning(warn, "w");
  EXPECT_EQ(exit_code(warn, false), 0);
  EXPECT_EQ(exit_code(warn, true), 1);  // --werror promotes

  pdl::Diagnostics err;
  pdl::add_error(err, "e");
  EXPECT_EQ(exit_code(err, false), 1);
}

// --- Golden lint over everything the repo ships ------------------------------

TEST(GoldenLint, ShippedPlatformsPassStructureSchemasAndAnalysis) {
  for (const char* name :
       {"cell-be", "hierarchical", "testbed-single", "testbed-starpu",
        "testbed-starpu-2gpu"}) {
    const std::string path =
        std::string(PDL_SOURCE_DIR) + "/platforms/" + name + ".pdl.xml";
    pdl::Diagnostics diags;
    auto platform = pdl::parse_platform_file(path, diags);
    ASSERT_TRUE(platform.ok()) << path;
    pdl::validate(platform.value(), diags);
    pdl::builtin_registry().validate_properties(platform.value(), diags);
    analyze_platform(platform.value(), {}, diags);
    pdl::normalize(diags);
    EXPECT_FALSE(pdl::has_errors(diags))
        << path << ":\n" << render_text(diags);
  }
}

TEST(GoldenLint, BuiltInPresetsPassAnalysis) {
  for (const pdl::Platform& platform :
       {pdl::discovery::paper_platform_single(),
        pdl::discovery::paper_platform_starpu_cpu(),
        pdl::discovery::paper_platform_starpu_2gpu(),
        pdl::discovery::cell_be_platform(),
        pdl::discovery::hierarchical_hybrid_platform()}) {
    pdl::Diagnostics diags;
    analyze_platform(platform, {}, diags);
    EXPECT_FALSE(pdl::has_errors(diags))
        << platform.name() << ":\n" << render_text(diags);
  }
}

}  // namespace
}  // namespace analysis
