#include <gtest/gtest.h>

#include "pdl/schema_export.hpp"
#include "pdl/well_known.hpp"
#include "xml/parser.hpp"
#include "xml/path.hpp"

namespace pdl {
namespace {

TEST(SchemaExport, ProducesWellFormedXml) {
  const std::string xsd = export_xsd(builtin_registry());
  auto doc = xml::parse(xsd);
  ASSERT_TRUE(doc.ok()) << doc.error().str();
  EXPECT_EQ(doc.value().root()->local_name(), "schema");
  EXPECT_EQ(doc.value().root()->resolve_namespace("xs"),
            "http://www.w3.org/2001/XMLSchema");
}

TEST(SchemaExport, DefinesBaseEntities) {
  const std::string xsd = export_xsd(builtin_registry());
  auto doc = xml::parse(xsd);
  ASSERT_TRUE(doc.ok());
  const xml::Element& root = *doc.value().root();

  for (const char* type :
       {"PropertyType", "PUDescriptorType", "MRDescriptorType",
        "ICDescriptorType", "MemoryRegionType", "InterconnectType",
        "PUCommonType", "MasterType", "HybridType", "WorkerType"}) {
    bool found = false;
    for (const auto* e : xml::select_all(root, "xs:complexType")) {
      found |= e->attribute_or("name", "") == type;
    }
    EXPECT_TRUE(found) << type;
  }
  // Both document roots the parser accepts are declared.
  std::vector<std::string> elements;
  for (const auto* e : xml::select_all(root, "xs:element")) {
    elements.push_back(e->attribute_or("name", ""));
  }
  EXPECT_NE(std::find(elements.begin(), elements.end(), "Master"), elements.end());
  EXPECT_NE(std::find(elements.begin(), elements.end(), "Platform"),
            elements.end());
}

TEST(SchemaExport, EmitsSubschemaDerivedTypes) {
  const std::string xsd = export_xsd(builtin_registry());
  // Each registered subschema appears as a derived property type with its
  // version and vocabulary documented.
  EXPECT_NE(xsd.find("oclDevicePropertyType"), std::string::npos);
  EXPECT_NE(xsd.find("cudaDevicePropertyType"), std::string::npos);
  EXPECT_NE(xsd.find("cellPUPropertyType"), std::string::npos);
  EXPECT_NE(xsd.find("urn:pdl:ext:opencl"), std::string::npos);
  EXPECT_NE(xsd.find("v1.1"), std::string::npos);  // OpenCL subschema version
  EXPECT_NE(xsd.find("GLOBAL_MEM_SIZE : size (unit required)"), std::string::npos);
  EXPECT_NE(xsd.find("base=\"pdl:PropertyType\""), std::string::npos);
}

TEST(SchemaExport, ReflectsNewlyRegisteredSubschemas) {
  SchemaRegistry registry = SchemaRegistry::with_builtins();
  Subschema fpga;
  fpga.prefix = "fpga";
  fpga.uri = "urn:vendor:fpga";
  fpga.type_name = "fpga:fpgaPropertyType";
  fpga.version_major = 2;
  fpga.version_minor = 3;
  fpga.properties = {{"LUT_COUNT", PropertyValueKind::kInt, false, "logic cells"}};
  registry.register_subschema(fpga);

  const std::string xsd = export_xsd(registry);
  EXPECT_NE(xsd.find("fpgaPropertyType"), std::string::npos);
  EXPECT_NE(xsd.find("v2.3"), std::string::npos);
  EXPECT_NE(xsd.find("LUT_COUNT : int"), std::string::npos);
}

}  // namespace
}  // namespace pdl
