#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/result.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace pdl::util {
namespace {

// --- trim / split -------------------------------------------------------------

TEST(StringUtil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitTrimmedDropsEmptiesAndTrims) {
  const auto parts = split_trimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtil, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "/"), "x/y/z");
  EXPECT_EQ(join({}, "/"), "");
}

// --- case helpers ----------------------------------------------------------------

TEST(StringUtil, CaseConversions) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(to_upper("MiXeD"), "MIXED");
}

TEST(StringUtil, IequalsIsCaseInsensitive) {
  EXPECT_TRUE(iequals("GPU", "gpu"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("gpu", "gpus"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("cascabel task", "cascabel"));
  EXPECT_FALSE(starts_with("cas", "cascabel"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", "file.xml"));
}

// --- numeric parsing ----------------------------------------------------------------

TEST(StringUtil, ParseIntAcceptsOnlyFullIntegers) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
}

TEST(StringUtil, ParseDoubleAcceptsFloats) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double(" +0.125E2 ").value(), 12.5);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
}

TEST(StringUtil, ParseDoubleRejectsNonFiniteAndOverflow) {
  // strtod accepts all of these; PDL property values must not (a non-finite
  // rate poisons the perf model downstream).
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("-INF").has_value());
  EXPECT_FALSE(parse_double("infinity").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("NaN(tag)").has_value());
  EXPECT_FALSE(parse_double("0x1p3").has_value());  // hex float
  EXPECT_FALSE(parse_double("1e999").has_value());  // ERANGE -> HUGE_VAL
  EXPECT_FALSE(parse_double("-1e999").has_value());
  EXPECT_FALSE(parse_double(".").has_value());      // no digits
  EXPECT_FALSE(parse_double("e5").has_value());
  // Underflow-to-zero is fine; tiny but representable values too.
  EXPECT_DOUBLE_EQ(parse_double("1e-999").value(), 0.0);
  EXPECT_GT(parse_double("1e-300").value(), 0.0);
}

TEST(StringUtil, ReplaceAllReplacesEveryOccurrence) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaaa", "aa", "b"), "bb");
  EXPECT_EQ(replace_all("x", "", "y"), "x");  // empty needle is a no-op
}

// --- Result / Status -------------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Result<int>::failure("boom", "here");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.error().str(), "here: boom");
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Result, MapPropagatesError) {
  Result<int> ok(2);
  auto doubled = ok.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 4);

  Result<int> bad = Result<int>::failure("nope");
  auto mapped = bad.map([](int v) { return v * 2; });
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error().message, "nope");
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f = Status::failure("bad");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().message, "bad");
}

// --- files -----------------------------------------------------------------------

TEST(StringUtil, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/pdl_util_test.txt";
  ASSERT_TRUE(write_file(path, "contents\nline2"));
  const auto read = read_file(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, "contents\nline2");
}

TEST(StringUtil, ReadMissingFileFails) {
  EXPECT_FALSE(read_file("/nonexistent/definitely/not/here").has_value());
}

// --- thread pool ------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 5.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 10.0);
}

}  // namespace
}  // namespace pdl::util
