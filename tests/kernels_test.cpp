#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/dgemm.hpp"
#include "kernels/matrix.hpp"
#include "kernels/vector_ops.hpp"

namespace kernels {
namespace {

// All DGEMM variants must agree with the naive reference.
class DgemmVariantTest : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DgemmVariantTest, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a(m, k), b(k, n), c_ref(m, n), c_blk(m, n);
  a.fill_random(1);
  b.fill_random(2);
  c_ref.fill_random(3);
  for (std::size_t i = 0; i < c_ref.rows() * c_ref.cols(); ++i) {
    c_blk.data()[i] = c_ref.data()[i];
  }
  dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
  dgemm_blocked(m, n, k, a.data(), b.data(), c_blk.data());
  EXPECT_LT(max_abs_diff(c_ref.data(), c_blk.data(), c_ref.rows() * c_ref.cols()),
            1e-9);
}

TEST_P(DgemmVariantTest, TiledMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a(m, k), b(k, n), c_ref(m, n), c_tiled(m, n);
  a.fill_random(10);
  b.fill_random(11);
  c_ref.fill(0.25);
  c_tiled.fill(0.25);
  dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
  dgemm_tiled(m, n, k, a.data(), b.data(), c_tiled.data());
  EXPECT_LT(
      max_abs_diff(c_ref.data(), c_tiled.data(), c_ref.rows() * c_ref.cols()),
      1e-9);
}

TEST(Dgemm, TiledFringeShapesMatchNaive) {
  // Exercise every interior/fringe split around the 4x4 micro-tile.
  for (std::size_t m = 1; m <= 9; ++m) {
    for (std::size_t n = 1; n <= 9; ++n) {
      const std::size_t k = 5;
      Matrix a(m, k), b(k, n), c_ref(m, n), c_tiled(m, n);
      a.fill_random(static_cast<int>(m * 16 + n));
      b.fill_random(static_cast<int>(m * 16 + n + 1));
      dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
      dgemm_tiled(m, n, k, a.data(), b.data(), c_tiled.data());
      ASSERT_LT(max_abs_diff(c_ref.data(), c_tiled.data(), m * n), 1e-9)
          << "m=" << m << " n=" << n;
    }
  }
}

TEST_P(DgemmVariantTest, ParallelMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a(m, k), b(k, n), c_ref(m, n), c_par(m, n);
  a.fill_random(4);
  b.fill_random(5);
  c_ref.fill(0.5);
  c_par.fill(0.5);
  dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
  dgemm_parallel(m, n, k, a.data(), b.data(), c_par.data(), 4);
  EXPECT_LT(max_abs_diff(c_ref.data(), c_par.data(), c_ref.rows() * c_ref.cols()),
            1e-9);
}

TEST_P(DgemmVariantTest, ParallelSharedPoolMatchesNaive) {
  // threads == 0 routes through the process-wide pool; repeated calls must
  // reuse it (and stay correct) rather than building a pool per call.
  const auto [m, n, k] = GetParam();
  Matrix a(m, k), b(k, n), c_ref(m, n), c_par(m, n);
  a.fill_random(12);
  b.fill_random(13);
  dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
  dgemm_parallel(m, n, k, a.data(), b.data(), c_par.data(), 0);
  EXPECT_LT(max_abs_diff(c_ref.data(), c_par.data(), c_ref.rows() * c_ref.cols()),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmVariantTest,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 5, 3),
                    std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 67),
                    std::make_tuple(128, 32, 96), std::make_tuple(1, 200, 1)));

TEST(Dgemm, AccumulatesIntoC) {
  // C += A*B, not C = A*B.
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;   // identity
  b.at(0, 0) = 3;
  b.at(1, 1) = 4;
  c.fill(10.0);
  dgemm_blocked(2, 2, 2, a.data(), b.data(), c.data());
  EXPECT_DOUBLE_EQ(c.at(0, 0), 13.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 14.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 10.0);
}

TEST(Dgemm, IdentityTimesMatrixIsMatrix) {
  const std::size_t n = 33;
  Matrix eye(n, n), b(n, n), c(n, n);
  for (std::size_t i = 0; i < n; ++i) eye.at(i, i) = 1.0;
  b.fill_random(7);
  dgemm_blocked(n, n, n, eye.data(), b.data(), c.data());
  EXPECT_LT(max_abs_diff(c.data(), b.data(), n * n), 1e-12);
}

TEST(Dgemm, BlockSizeDoesNotChangeResult) {
  const std::size_t n = 96;
  Matrix a(n, n), b(n, n);
  a.fill_random(8);
  b.fill_random(9);
  Matrix ref(n, n);
  dgemm_blocked(n, n, n, a.data(), b.data(), ref.data(), 64);
  for (std::size_t block : {8u, 16u, 33u, 100u, 1000u}) {
    Matrix c(n, n);
    dgemm_blocked(n, n, n, a.data(), b.data(), c.data(), block);
    EXPECT_LT(max_abs_diff(ref.data(), c.data(), n * n), 1e-12) << block;
  }
}

TEST(Dgemm, FlopCount) {
  EXPECT_DOUBLE_EQ(dgemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(dgemm_flops(8192, 8192, 8192), 2.0 * 8192.0 * 8192.0 * 8192.0);
}

TEST(Dgemm, ZeroSizedProblemsAreNoops) {
  Matrix a(0, 0), b(0, 0), c(0, 0);
  dgemm_naive(0, 0, 0, a.data(), b.data(), c.data());
  dgemm_blocked(0, 0, 0, a.data(), b.data(), c.data());
  dgemm_parallel(0, 0, 0, a.data(), b.data(), c.data(), 2);
}

TEST(DgemmBatched, SmallMatchesReferenceAcrossFringeShapes) {
  // Sweep element shapes around the i-k-j kernel's vector widths, including
  // degenerate 1-wide elements and batch sizes 1..5.
  for (std::size_t batch = 1; batch <= 5; ++batch) {
    for (std::size_t t = 1; t <= 9; t += 2) {
      const std::size_t m = t, n = t + 1, k = t;
      std::vector<double> a(batch * m * k), b(batch * k * n);
      std::vector<double> c_ref(batch * m * n, 0.5), c_opt(batch * m * n, 0.5);
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = std::sin(static_cast<double>(i + batch));
      }
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = std::cos(static_cast<double>(i) * 0.7);
      }
      dgemm_batched_ref(batch, m, n, k, a.data(), b.data(), c_ref.data());
      dgemm_batched_small(batch, m, n, k, a.data(), b.data(), c_opt.data());
      ASSERT_LT(max_abs_diff(c_ref.data(), c_opt.data(), c_ref.size()), 1e-12)
          << "batch=" << batch << " t=" << t;
    }
  }
}

TEST(DgemmBatched, ZeroBatchAndZeroSizeAreNoops) {
  double sentinel = 42.0;
  dgemm_batched_small(0, 4, 4, 4, nullptr, nullptr, &sentinel);
  dgemm_batched_small(3, 0, 0, 0, nullptr, nullptr, &sentinel);
  EXPECT_DOUBLE_EQ(sentinel, 42.0);
}

TEST(DgemmBatched, FlopCount) {
  EXPECT_DOUBLE_EQ(dgemm_batched_flops(10, 4, 4, 4), 10.0 * 2 * 4 * 4 * 4);
}

TEST(DgemmMixed, ErrorStaysWithinTheDocumentedBound) {
  const std::size_t m = 24, n = 17, k = 96;
  Matrix a(m, k), b(k, n), c_ref(m, n), c_mix(m, n);
  a.fill_random(7);
  b.fill_random(8);
  c_ref.fill(1.0);
  c_mix.fill(1.0);
  dgemm_naive(m, n, k, a.data(), b.data(), c_ref.data());
  dgemm_mixed(m, n, k, a.data(), b.data(), c_mix.data());

  double max_a = 0.0, max_b = 0.0;
  for (std::size_t i = 0; i < m * k; ++i) max_a = std::max(max_a, std::abs(a.data()[i]));
  for (std::size_t i = 0; i < k * n; ++i) max_b = std::max(max_b, std::abs(b.data()[i]));
  // Header bound: ~3 * k * max|A| * max|B| * 2^-24 per element (input
  // demotion of both operands + float product rounding, k accumulations).
  const double bound = dgemm_mixed_error_bound(k, max_a, max_b);
  const double err = max_abs_diff(c_ref.data(), c_mix.data(), m * n);
  EXPECT_LT(err, bound);
  // And the kernel must not silently be full double precision either —
  // it demotes inputs, so *some* rounding is expected on random data.
  EXPECT_GT(err, 0.0);
}

// Property test backing the registered error model (satellite of the A7xx
// analysis): for many random shapes and seeds, the measured deviation of
// dgemm_mixed from the double reference stays within the *shared* static
// bound helper — the exact expression builtin_variants.cpp registers as the
// variant's ErrorModel, so the analysis never promises tighter than reality.
TEST(DgemmMixed, PropertyMeasuredErrorWithinSharedStaticBound) {
  const struct { std::size_t m, n, k; } shapes[] = {
      {1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {24, 17, 96}, {8, 40, 128},
  };
  for (const auto& s : shapes) {
    for (unsigned seed = 1; seed <= 10; ++seed) {
      Matrix a(s.m, s.k), b(s.k, s.n), c_ref(s.m, s.n), c_mix(s.m, s.n);
      a.fill_random(seed);
      b.fill_random(seed + 1000);
      c_ref.fill(0.5);
      c_mix.fill(0.5);
      dgemm_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
      dgemm_mixed(s.m, s.n, s.k, a.data(), b.data(), c_mix.data());
      double max_a = 0.0, max_b = 0.0;
      for (std::size_t i = 0; i < s.m * s.k; ++i)
        max_a = std::max(max_a, std::abs(a.data()[i]));
      for (std::size_t i = 0; i < s.k * s.n; ++i)
        max_b = std::max(max_b, std::abs(b.data()[i]));
      const double bound = dgemm_mixed_error_bound(s.k, max_a, max_b);
      const double err = max_abs_diff(c_ref.data(), c_mix.data(), s.m * s.n);
      ASSERT_LE(err, bound) << "shape " << s.m << "x" << s.n << "x" << s.k
                            << " seed " << seed << " err " << err
                            << " bound " << bound;
    }
  }
}

TEST(VectorOps, VectorAddMatchesPaperSemantics) {
  // A += B (A readwrite, B read — paper Listing 3).
  std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30};
  vector_add(a.data(), b.data(), 3);
  EXPECT_DOUBLE_EQ(a[0], 11);
  EXPECT_DOUBLE_EQ(a[1], 22);
  EXPECT_DOUBLE_EQ(a[2], 33);
}

TEST(VectorOps, Daxpy) {
  std::vector<double> x = {1, 2}, y = {10, 20};
  daxpy(2, 3.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 13);
  EXPECT_DOUBLE_EQ(y[1], 26);
}

TEST(VectorOps, DotAndNorm) {
  std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(ddot(2, x.data(), x.data()), 25.0);
  EXPECT_DOUBLE_EQ(dnrm2(2, x.data()), 5.0);
}

TEST(VectorOps, Scal) {
  std::vector<double> x = {1, -2, 4};
  dscal(3, -0.5, x.data());
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(Matrix, FillRandomIsDeterministicPerSeed) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  a.fill_random(42);
  b.fill_random(42);
  c.fill_random(43);
  EXPECT_EQ(max_abs_diff(a.data(), b.data(), 16), 0.0);
  EXPECT_GT(max_abs_diff(a.data(), c.data(), 16), 0.0);
}

}  // namespace
}  // namespace kernels
