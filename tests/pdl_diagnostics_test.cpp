#include <gtest/gtest.h>

#include "pdl/diagnostics.hpp"

namespace pdl {
namespace {

TEST(SourceLoc, DefaultIsInvalidAndPrintsNothing) {
  SourceLoc loc;
  EXPECT_FALSE(loc.valid());
  EXPECT_EQ(loc.str(), "");
}

TEST(SourceLoc, StrFormatsFileLineColumn) {
  EXPECT_EQ((SourceLoc{"p.xml", 12, 5}).str(), "p.xml:12:5");
  // Unknown column is omitted; unknown file falls back to <input>.
  EXPECT_EQ((SourceLoc{"p.xml", 12, 0}).str(), "p.xml:12");
  EXPECT_EQ((SourceLoc{"", 3, 1}).str(), "<input>:3:1");
}

TEST(Diagnostic, StrIncludesLocationRuleAndWhere) {
  Diagnostic d{Severity::kWarning, "quantity must be >= 1", "m0/w0", "V7",
               SourceLoc{"p.xml", 9, 3}};
  EXPECT_EQ(d.str(), "p.xml:9:3: warning: quantity must be >= 1 [V7] [m0/w0]");

  Diagnostic bare{Severity::kError, "boom", "", "", {}};
  EXPECT_EQ(bare.str(), "error: boom");
}

TEST(Diagnostics, AddFindingPopulatesAllFields) {
  Diagnostics diags;
  Diagnostic& d = add_finding(diags, Severity::kError, "A301-dead-variant",
                              "never selected", SourceLoc{"prog.cpp", 4, 0}, "Ivecadd");
  EXPECT_EQ(&d, &diags.back());
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "A301-dead-variant");
  EXPECT_EQ(d.message, "never selected");
  EXPECT_EQ(d.loc.file, "prog.cpp");
  EXPECT_EQ(d.loc.line, 4);
  EXPECT_EQ(d.where, "Ivecadd");
}

TEST(Diagnostics, LessOrdersByLocationThenSeverity) {
  const Diagnostic early{Severity::kInfo, "m", "", "R", SourceLoc{"a.xml", 1, 1}};
  const Diagnostic late{Severity::kError, "m", "", "R", SourceLoc{"a.xml", 2, 1}};
  const Diagnostic other_file{Severity::kError, "m", "", "R", SourceLoc{"b.xml", 1, 1}};
  EXPECT_TRUE(diagnostic_less(early, late));
  EXPECT_FALSE(diagnostic_less(late, early));
  EXPECT_TRUE(diagnostic_less(late, other_file));

  // Same location: errors sort before warnings, then by rule id.
  const Diagnostic warn{Severity::kWarning, "m", "", "A1", SourceLoc{"a.xml", 1, 1}};
  const Diagnostic err{Severity::kError, "m", "", "A2", SourceLoc{"a.xml", 1, 1}};
  EXPECT_TRUE(diagnostic_less(err, warn));
  EXPECT_FALSE(diagnostic_less(warn, err));
  const Diagnostic err_b{Severity::kError, "m", "", "A9", SourceLoc{"a.xml", 1, 1}};
  EXPECT_TRUE(diagnostic_less(err, err_b));
}

TEST(Diagnostics, NormalizeSortsAndDropsExactDuplicates) {
  Diagnostics diags;
  add_finding(diags, Severity::kWarning, "V5", "childless hybrid",
              SourceLoc{"p.xml", 8, 0}, "m0/h0");
  add_finding(diags, Severity::kError, "V6", "duplicate id", SourceLoc{"p.xml", 3, 0},
              "m0");
  // Exact duplicate of the first finding (e.g. two checks on one node).
  add_finding(diags, Severity::kWarning, "V5", "childless hybrid",
              SourceLoc{"p.xml", 8, 0}, "m0/h0");
  // Same text at a different location is NOT a duplicate.
  add_finding(diags, Severity::kWarning, "V5", "childless hybrid",
              SourceLoc{"p.xml", 11, 0}, "m0/h1");

  normalize(diags);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "V6");  // line 3 first
  EXPECT_EQ(diags[1].loc.line, 8);
  EXPECT_EQ(diags[2].loc.line, 11);
}

TEST(Diagnostics, NormalizeKeepsSeverityVariants) {
  // Identical text but different severity (per-rule override scenarios)
  // must survive dedupe.
  Diagnostics diags;
  add_finding(diags, Severity::kWarning, "A103-property-sanity", "bad value",
              SourceLoc{"p.xml", 2, 0});
  add_finding(diags, Severity::kError, "A103-property-sanity", "bad value",
              SourceLoc{"p.xml", 2, 0});
  normalize(diags);
  EXPECT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::kError);  // errors first
}

TEST(Diagnostics, CountersAndHasErrors) {
  Diagnostics diags;
  EXPECT_FALSE(has_errors(diags));
  add_warning(diags, "w");
  add_info(diags, "i");
  EXPECT_FALSE(has_errors(diags));
  add_error(diags, "e");
  EXPECT_TRUE(has_errors(diags));
  EXPECT_EQ(count_severity(diags, Severity::kError), 1u);
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
  EXPECT_EQ(count_severity(diags, Severity::kInfo), 1u);
}

}  // namespace
}  // namespace pdl
