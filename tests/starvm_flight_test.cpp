// Flight-recorder tests: the engine's always-on ring hooks (task
// lifecycle records, submission accounting), explicit and post-mortem
// dumps, and a concurrent wraparound stress run (picked up by the CI TSan
// filter via the *Stress* suite name) that hammers snapshot() while the
// producer laps the ring.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "obs/flight_recorder.hpp"
#include "starvm/engine.hpp"
#include "util/string_util.hpp"

namespace starvm {
namespace {

Codelet make_codelet(std::string name,
                     std::function<void(const ExecContext&)> fn) {
  Codelet c;
  c.name = std::move(name);
  c.impls.push_back(Implementation{DeviceKind::kCpu, std::move(fn)});
  return c;
}

std::string temp_prefix(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(getpid()) + "." + name;
}

std::uint64_t count_kind(const std::vector<obs::FlightEvent>& events,
                         obs::FlightKind kind) {
  std::uint64_t n = 0;
  for (const obs::FlightEvent& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// --- Engine integration ------------------------------------------------------

TEST(EngineFlight, SnapshotCarriesTaskLifecycle) {
  Engine engine(EngineConfig::cpus(2));
  Codelet noop = make_codelet("noop", [](const ExecContext&) {});
  std::vector<std::vector<double>> buffers(4, std::vector<double>(1));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), 1);
    engine.submit(TaskDesc{&noop, {{h, Access::kReadWrite}}});
  }
  ASSERT_TRUE(engine.wait_all().ok());

  ASSERT_NE(engine.flight_recorder(), nullptr);
  const std::vector<obs::FlightEvent> events = engine.flight_snapshot();
  EXPECT_EQ(count_kind(events, obs::FlightKind::kTaskStart), 4u);
  EXPECT_EQ(count_kind(events, obs::FlightKind::kTaskEnd), 4u);
  for (const obs::FlightEvent& e : events) {
    if (e.kind == obs::FlightKind::kTaskEnd) {
      EXPECT_TRUE(e.has_end());
      EXPECT_GE(e.t1, e.t0);
    }
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.tasks_submitted, 4u);
  EXPECT_GE(stats.flight_records, 8u);  // 4 starts + 4 ends at minimum
  EXPECT_EQ(stats.flight_overwritten, 0u);
}

TEST(EngineFlight, DisabledWhenConfiguredToZero) {
  EngineConfig config = EngineConfig::cpus(2);
  config.flight_records_per_device = 0;
  Engine engine(std::move(config));
  Codelet noop = make_codelet("noop", [](const ExecContext&) {});
  std::vector<double> data(1);
  DataHandle* h = engine.register_vector(data.data(), 1);
  engine.submit(TaskDesc{&noop, {{h, Access::kReadWrite}}});
  ASSERT_TRUE(engine.wait_all().ok());

  EXPECT_EQ(engine.flight_recorder(), nullptr);
  EXPECT_TRUE(engine.flight_snapshot().empty());
  EXPECT_FALSE(engine.dump_flight_recorder(temp_prefix("disabled")));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.flight_records, 0u);
}

// Regression: submit_batch must account each task exactly once in
// tasks_submitted (not once per batch, not once per submit call).
TEST(EngineFlight, SubmitBatchCountsEachTaskOnce) {
  Engine engine(EngineConfig::cpus(2));
  Codelet noop = make_codelet("noop", [](const ExecContext&) {});
  std::vector<std::vector<double>> buffers(7, std::vector<double>(1));
  std::vector<TaskDesc> batch;
  for (std::size_t i = 0; i < 5; ++i) {
    DataHandle* h = engine.register_vector(buffers[i].data(), 1);
    batch.push_back(TaskDesc{&noop, {{h, Access::kReadWrite}}});
  }
  EXPECT_EQ(engine.submit_batch(std::move(batch)).size(), 5u);
  for (std::size_t i = 5; i < 7; ++i) {
    DataHandle* h = engine.register_vector(buffers[i].data(), 1);
    engine.submit(TaskDesc{&noop, {{h, Access::kReadWrite}}});
  }
  ASSERT_TRUE(engine.wait_all().ok());
  EXPECT_EQ(engine.stats().tasks_submitted, 7u);
}

TEST(EngineFlight, ExplicitDumpWritesJsonlAndChromeTrace) {
  Engine engine(EngineConfig::cpus(2));
  Codelet noop = make_codelet("noop", [](const ExecContext&) {});
  std::vector<double> data(1);
  DataHandle* h = engine.register_vector(data.data(), 1);
  engine.submit(TaskDesc{&noop, {{h, Access::kReadWrite}}, "payload_task"});
  ASSERT_TRUE(engine.wait_all().ok());

  const std::string prefix = temp_prefix("explicit_dump");
  ASSERT_TRUE(engine.dump_flight_recorder(prefix, "unit_test"));

  const auto jsonl = pdl::util::read_file(prefix + ".jsonl");
  ASSERT_TRUE(jsonl.has_value());
  EXPECT_NE(jsonl->find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(jsonl->find("task_end"), std::string::npos);
  EXPECT_NE(jsonl->find("payload_task"), std::string::npos);

  const auto trace = pdl::util::read_file(prefix + ".trace.json");
  ASSERT_TRUE(trace.has_value());
  const auto parsed = testjson::parse(*trace);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(testjson::contains_string(parsed, "flight recorder"));
  // Event names compose kind and label: "task_end: payload_task".
  EXPECT_NE(trace->find("payload_task"), std::string::npos);

  std::remove((prefix + ".jsonl").c_str());
  std::remove((prefix + ".trace.json").c_str());
}

TEST(EngineFlight, PostMortemDumpOnPermanentFailure) {
  const std::string prefix = temp_prefix("postmortem");
  EngineConfig config = EngineConfig::cpus(2);
  auto plan = FaultPlan::parse("fail:task=1,attempts=99");
  ASSERT_TRUE(plan.ok()) << plan.error().str();
  config.fault_plan = std::make_shared<const FaultPlan>(std::move(plan).value());
  config.flight_dump_prefix = prefix;
  Engine engine(std::move(config));

  Codelet noop = make_codelet("noop", [](const ExecContext&) {});
  std::vector<double> data(1);
  DataHandle* h = engine.register_vector(data.data(), 1);
  engine.submit(TaskDesc{&noop, {{h, Access::kReadWrite}}, "doomed"});
  EXPECT_FALSE(engine.wait_all().ok());

  const auto jsonl = pdl::util::read_file(prefix + ".jsonl");
  ASSERT_TRUE(jsonl.has_value()) << "post-mortem dump missing";
  EXPECT_NE(jsonl->find("\"reason\":\"wait_all_failure\""), std::string::npos);
  EXPECT_NE(jsonl->find("task_failed"), std::string::npos);
  EXPECT_NE(jsonl->find("doomed"), std::string::npos);

  const auto trace = pdl::util::read_file(prefix + ".trace.json");
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(testjson::parse(*trace).ok);

  // The dump fires once; a second wait_all must not rewrite it.
  std::remove((prefix + ".jsonl").c_str());
  EXPECT_FALSE(engine.wait_all().ok());
  EXPECT_FALSE(pdl::util::read_file(prefix + ".jsonl").has_value());
  std::remove((prefix + ".trace.json").c_str());
}

// --- Concurrent wraparound stress (runs under the CI TSan filter) ------------

TEST(FlightRecorderStress, SnapshotsStayConsistentWhileProducerWraps) {
  obs::FlightRing ring(16);  // tiny: the producer laps it thousands of times
  constexpr std::uint64_t kRecords = 200000;

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      ring.record(obs::FlightKind::kQueueDepth, 0, i, 0,
                  static_cast<double>(i), 0.0, static_cast<double>(i));
    }
  });

  std::uint64_t snapshots = 0;
  std::uint64_t total_events = 0;
  std::vector<obs::FlightEvent> events;
  while (ring.produced() < kRecords) {
    events.clear();
    ring.snapshot_into(events, 0);
    ASSERT_LE(events.size(), ring.capacity());
    for (std::size_t i = 0; i < events.size(); ++i) {
      // Every surviving record is internally consistent (payload matches
      // its sequence number — a torn read would break this) and ordered.
      EXPECT_EQ(events[i].task, events[i].seq);
      EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(events[i].seq));
      if (i > 0) {
        EXPECT_GT(events[i].seq, events[i - 1].seq);
      }
    }
    ++snapshots;
    total_events += events.size();
  }
  producer.join();

  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(ring.produced(), kRecords);
  EXPECT_EQ(ring.overwritten(), kRecords - ring.capacity());

  // Quiescent ring: the final snapshot is exactly the newest window.
  events.clear();
  ring.snapshot_into(events, 0);
  ASSERT_EQ(events.size(), ring.capacity());
  EXPECT_EQ(events.back().seq, kRecords - 1);
}

}  // namespace
}  // namespace starvm
