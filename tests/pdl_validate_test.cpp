#include <gtest/gtest.h>

#include "pdl/model.hpp"
#include "pdl/validate.hpp"

namespace pdl {
namespace {

Platform valid_platform() {
  Platform p("valid");
  ProcessingUnit* m = p.add_master("m0");
  ProcessingUnit* h = m->add_child(PuKind::kHybrid, "h0");
  h->add_child(PuKind::kWorker, "w0", 4);
  m->add_child(PuKind::kWorker, "w1");
  return p;
}

TEST(Validate, AcceptsWellFormedHierarchy) {
  Diagnostics diags;
  EXPECT_TRUE(validate(valid_platform(), diags));
  EXPECT_FALSE(has_errors(diags));
}

TEST(Validate, V1_RejectsEmptyPlatform) {
  Platform p;
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
  EXPECT_TRUE(has_errors(diags));
}

TEST(Validate, V2_RejectsNestedMaster) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kMaster, "m1");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V3_RejectsWorkerWithChildren) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  ProcessingUnit* w = m->add_child(PuKind::kWorker, "w0");
  w->add_child(PuKind::kWorker, "w1");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V5_WarnsOnChildlessHybrid) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kHybrid, "h0");
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));  // warning, not error
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V6_RejectsDuplicateIds) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kWorker, "w");
  m->add_child(PuKind::kWorker, "w");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V6_RejectsEmptyId) {
  Platform p;
  p.add_master("");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V7_RejectsNonPositiveQuantity) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kWorker, "w", 0);
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V8_RejectsDanglingInterconnectEndpoint) {
  Platform p = valid_platform();
  Interconnect ic;
  ic.type = "PCIe";
  ic.from = "m0";
  ic.to = "ghost";
  p.masters()[0]->interconnects().push_back(ic);
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V9_WarnsOnOutOfScopeInterconnect) {
  Platform p;
  ProcessingUnit* m0 = p.add_master("m0");
  m0->add_child(PuKind::kWorker, "w0");
  ProcessingUnit* m1 = p.add_master("m1");
  m1->add_child(PuKind::kWorker, "w1");
  // Declared on m0 but connecting only m1's subtree.
  Interconnect ic;
  ic.type = "QPI";
  ic.from = "m1";
  ic.to = "w1";
  m0->interconnects().push_back(ic);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V10_WarnsOnDuplicateMemoryRegionIds) {
  Platform p = valid_platform();
  MemoryRegion a;
  a.id = "mr";
  MemoryRegion b;
  b.id = "mr";
  p.masters()[0]->memory_regions().push_back(a);
  p.masters()[0]->memory_regions().push_back(b);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V11_WarnsOnDuplicateProperty) {
  Platform p = valid_platform();
  p.masters()[0]->descriptor().add("ARCH", "x86");
  p.masters()[0]->descriptor().add("ARCH", "x86");
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V12_WarnsOnFixedPropertyWithoutValue) {
  Platform p = valid_platform();
  Property prop;
  prop.name = "EMPTY";
  prop.fixed = true;
  p.masters()[0]->descriptor().add(prop);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);

  // Unfixed blank values are the paper's to-be-filled-in case: no warning.
  Platform q = valid_platform();
  Property unfixed;
  unfixed.name = "LATER";
  unfixed.fixed = false;
  q.masters()[0]->descriptor().add(unfixed);
  Diagnostics diags2;
  EXPECT_TRUE(validate(q, diags2));
  EXPECT_EQ(count_severity(diags2, Severity::kWarning), 0u);
}

TEST(Validate, WorkerAtTopLevelIsRejectedViaPlatformShape) {
  // The model API cannot add a top-level Worker through Platform, but a
  // hand-built tree can violate it; simulate by checking a Hybrid master
  // replacement: Hybrid at top level must error (V5).
  Platform p;
  auto hybrid = std::make_unique<ProcessingUnit>(PuKind::kHybrid, "h0");
  hybrid->add_child(PuKind::kWorker, "w0");
  p.add_master(std::move(hybrid));
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, IsValidConvenience) {
  EXPECT_TRUE(is_valid(valid_platform()));
  Platform bad;
  EXPECT_FALSE(is_valid(bad));
}

}  // namespace
}  // namespace pdl
