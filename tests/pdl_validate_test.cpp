#include <gtest/gtest.h>

#include "pdl/model.hpp"
#include "pdl/parser.hpp"
#include "pdl/validate.hpp"

namespace pdl {
namespace {

/// First diagnostic carrying `rule`, or nullptr.
const Diagnostic* find_rule_diag(const Diagnostics& diags, const std::string& rule) {
  for (const auto& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

Platform valid_platform() {
  Platform p("valid");
  ProcessingUnit* m = p.add_master("m0");
  ProcessingUnit* h = m->add_child(PuKind::kHybrid, "h0");
  h->add_child(PuKind::kWorker, "w0", 4);
  m->add_child(PuKind::kWorker, "w1");
  return p;
}

TEST(Validate, AcceptsWellFormedHierarchy) {
  Diagnostics diags;
  EXPECT_TRUE(validate(valid_platform(), diags));
  EXPECT_FALSE(has_errors(diags));
}

TEST(Validate, V1_RejectsEmptyPlatform) {
  Platform p;
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
  EXPECT_TRUE(has_errors(diags));
}

TEST(Validate, V2_RejectsNestedMaster) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kMaster, "m1");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V3_RejectsWorkerWithChildren) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  ProcessingUnit* w = m->add_child(PuKind::kWorker, "w0");
  w->add_child(PuKind::kWorker, "w1");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V5_WarnsOnChildlessHybrid) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kHybrid, "h0");
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));  // warning, not error
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V6_RejectsDuplicateIds) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kWorker, "w");
  m->add_child(PuKind::kWorker, "w");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V6_RejectsEmptyId) {
  Platform p;
  p.add_master("");
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V7_RejectsNonPositiveQuantity) {
  Platform p;
  ProcessingUnit* m = p.add_master("m0");
  m->add_child(PuKind::kWorker, "w", 0);
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V8_RejectsDanglingInterconnectEndpoint) {
  Platform p = valid_platform();
  Interconnect ic;
  ic.type = "PCIe";
  ic.from = "m0";
  ic.to = "ghost";
  p.masters()[0]->interconnects().push_back(ic);
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, V9_WarnsOnOutOfScopeInterconnect) {
  Platform p;
  ProcessingUnit* m0 = p.add_master("m0");
  m0->add_child(PuKind::kWorker, "w0");
  ProcessingUnit* m1 = p.add_master("m1");
  m1->add_child(PuKind::kWorker, "w1");
  // Declared on m0 but connecting only m1's subtree.
  Interconnect ic;
  ic.type = "QPI";
  ic.from = "m1";
  ic.to = "w1";
  m0->interconnects().push_back(ic);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V10_WarnsOnDuplicateMemoryRegionIds) {
  Platform p = valid_platform();
  MemoryRegion a;
  a.id = "mr";
  MemoryRegion b;
  b.id = "mr";
  p.masters()[0]->memory_regions().push_back(a);
  p.masters()[0]->memory_regions().push_back(b);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V11_WarnsOnDuplicateProperty) {
  Platform p = valid_platform();
  p.masters()[0]->descriptor().add("ARCH", "x86");
  p.masters()[0]->descriptor().add("ARCH", "x86");
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);
}

TEST(Validate, V12_WarnsOnFixedPropertyWithoutValue) {
  Platform p = valid_platform();
  Property prop;
  prop.name = "EMPTY";
  prop.fixed = true;
  p.masters()[0]->descriptor().add(prop);
  Diagnostics diags;
  EXPECT_TRUE(validate(p, diags));
  EXPECT_GE(count_severity(diags, Severity::kWarning), 1u);

  // Unfixed blank values are the paper's to-be-filled-in case: no warning.
  Platform q = valid_platform();
  Property unfixed;
  unfixed.name = "LATER";
  unfixed.fixed = false;
  q.masters()[0]->descriptor().add(unfixed);
  Diagnostics diags2;
  EXPECT_TRUE(validate(q, diags2));
  EXPECT_EQ(count_severity(diags2, Severity::kWarning), 0u);
}

TEST(Validate, WorkerAtTopLevelIsRejectedViaPlatformShape) {
  // The model API cannot add a top-level Worker through Platform, but a
  // hand-built tree can violate it; simulate by checking a Hybrid master
  // replacement: Hybrid at top level must error (V5).
  Platform p;
  auto hybrid = std::make_unique<ProcessingUnit>(PuKind::kHybrid, "h0");
  hybrid->add_child(PuKind::kWorker, "w0");
  p.add_master(std::move(hybrid));
  Diagnostics diags;
  EXPECT_FALSE(validate(p, diags));
}

TEST(Validate, DiagnosticsCarryStableRuleIds) {
  // Every structural rule tags its findings with the V-number, so tools
  // and tests can match on ids instead of message text.
  Platform p;
  Diagnostics diags;
  validate(p, diags);
  ASSERT_NE(find_rule_diag(diags, "V1"), nullptr);

  Platform dup;
  ProcessingUnit* m = dup.add_master("m0");
  m->add_child(PuKind::kWorker, "w");
  m->add_child(PuKind::kWorker, "w");
  m->add_child(PuKind::kWorker, "q", 0);
  Diagnostics dup_diags;
  validate(dup, dup_diags);
  EXPECT_NE(find_rule_diag(dup_diags, "V6"), nullptr);
  EXPECT_NE(find_rule_diag(dup_diags, "V7"), nullptr);
}

TEST(Validate, ParsedPlatformDiagnosticsPointAtRealLines) {
  // Parse XML so the model carries SourceLocs; the duplicate Worker id is
  // declared on line 5 of the document.
  constexpr const char* kXml = R"(<?xml version="1.0"?>
<Platform name="locs" version="1.0">
  <Master id="m0" quantity="1">
    <Worker id="w" quantity="1"></Worker>
    <Worker id="w" quantity="1"></Worker>
  </Master>
</Platform>)";
  Diagnostics parse_diags;
  auto platform = parse_platform(kXml, parse_diags, "locs.pdl.xml");
  ASSERT_TRUE(platform.ok());

  Diagnostics diags;
  EXPECT_FALSE(validate(platform.value(), diags));

  const Diagnostic* dup = find_rule_diag(diags, "V6");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->loc.file, "locs.pdl.xml");
  EXPECT_EQ(dup->loc.line, 5);
  EXPECT_GT(dup->loc.column, 0);
}

TEST(Validate, V9_V12_WarningsCarryRuleIdsAndLocations) {
  constexpr const char* kXml = R"(<?xml version="1.0"?>
<Platform name="warnings" version="1.0">
  <Master id="m0" quantity="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>EMPTY_FIXED</name>
        <value></value>
      </Property>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>x86</value>
      </Property>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>x86</value>
      </Property>
    </PUDescriptor>
    <MemoryRegion id="mr"></MemoryRegion>
    <MemoryRegion id="mr"></MemoryRegion>
    <Worker id="w0" quantity="1"></Worker>
    <Worker id="w1" quantity="1"></Worker>
    <Interconnect type="QPI" from="w1" to="w1"></Interconnect>
  </Master>
  <Master id="m1" quantity="1">
    <Interconnect type="QPI" from="w0" to="w1"></Interconnect>
  </Master>
</Platform>)";
  Diagnostics parse_diags;
  auto platform = parse_platform(kXml, parse_diags, "warn.pdl.xml");
  ASSERT_TRUE(platform.ok());

  Diagnostics diags;
  EXPECT_TRUE(validate(platform.value(), diags));  // warnings only

  // V9: m1's interconnect touches only m0's subtree.
  const Diagnostic* scope = find_rule_diag(diags, "V9");
  ASSERT_NE(scope, nullptr);
  EXPECT_EQ(scope->severity, Severity::kWarning);
  EXPECT_EQ(scope->loc.file, "warn.pdl.xml");
  EXPECT_GT(scope->loc.line, 0);

  // V10: duplicate MemoryRegion id within one PU.
  const Diagnostic* mr = find_rule_diag(diags, "V10");
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->severity, Severity::kWarning);
  EXPECT_GT(mr->loc.line, 0);

  // V11: duplicate property name in one descriptor.
  const Diagnostic* dup_prop = find_rule_diag(diags, "V11");
  ASSERT_NE(dup_prop, nullptr);
  EXPECT_EQ(dup_prop->severity, Severity::kWarning);

  // V12: fixed property with empty value.
  const Diagnostic* empty_fixed = find_rule_diag(diags, "V12");
  ASSERT_NE(empty_fixed, nullptr);
  EXPECT_EQ(empty_fixed->severity, Severity::kWarning);
  EXPECT_GT(empty_fixed->loc.line, 0);
}

TEST(Validate, NormalizeMakesParsedDiagnosticsDeterministic) {
  Platform dup;
  ProcessingUnit* m = dup.add_master("m0");
  m->add_child(PuKind::kWorker, "w");
  m->add_child(PuKind::kWorker, "w");
  Diagnostics a, b;
  validate(dup, a);
  validate(dup, b);
  validate(dup, b);  // duplicate run: normalize() must collapse repeats
  normalize(a);
  normalize(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].str(), b[i].str());
  }
}

TEST(Validate, IsValidConvenience) {
  EXPECT_TRUE(is_valid(valid_platform()));
  Platform bad;
  EXPECT_FALSE(is_valid(bad));
}

}  // namespace
}  // namespace pdl
