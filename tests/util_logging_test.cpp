#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace pdl::util {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelIsProcessGlobal) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, MacrosEmitWithoutCrashing) {
  set_log_level(LogLevel::kOff);  // suppressed, but the full path runs
  PDL_LOG_DEBUG << "debug " << 1;
  PDL_LOG_INFO << "info " << 2.5;
  PDL_LOG_WARN << "warn " << "text";
  PDL_LOG_ERROR << "error";
}

TEST_F(LoggingTest, FilteringComparesSeverity) {
  // Only observable through absence of crashes/output here; the filter
  // logic itself is a simple comparison — exercise both sides.
  set_log_level(LogLevel::kError);
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "kept (stderr)");
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "dropped too");
}

}  // namespace
}  // namespace pdl::util
