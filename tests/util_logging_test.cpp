#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.hpp"

namespace pdl::util {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override {
    unsetenv("PDL_LOG_LEVEL");
    set_log_level(saved_);
  }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelIsProcessGlobal) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, MacrosEmitWithoutCrashing) {
  set_log_level(LogLevel::kOff);  // suppressed, but the full path runs
  PDL_LOG_DEBUG << "debug " << 1;
  PDL_LOG_INFO << "info " << 2.5;
  PDL_LOG_WARN << "warn " << "text";
  PDL_LOG_ERROR << "error";
}

TEST_F(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("42"), std::nullopt);
}

TEST_F(LoggingTest, EnvVarSetsTheLevel) {
  setenv("PDL_LOG_LEVEL", "debug", 1);
  apply_env_log_level();
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  setenv("PDL_LOG_LEVEL", "error", 1);
  apply_env_log_level();
  EXPECT_EQ(log_level(), LogLevel::kError);

  // Unparsable values leave the level untouched.
  setenv("PDL_LOG_LEVEL", "nonsense", 1);
  apply_env_log_level();
  EXPECT_EQ(log_level(), LogLevel::kError);

  // set_log_level overrides whatever the environment said.
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, MessagesCarryTimestampSeverityAndThreadId) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "hello metrics");
  const std::string out = testing::internal::GetCapturedStderr();

  // "[pdl <seconds>.<micros> INFO  t<N>] hello metrics\n"
  ASSERT_EQ(out.rfind("[pdl ", 0), 0u) << out;
  EXPECT_NE(out.find(" INFO "), std::string::npos) << out;
  EXPECT_NE(out.find(" t"), std::string::npos) << out;
  EXPECT_NE(out.find("] hello metrics\n"), std::string::npos) << out;

  // Timestamp parses as a non-negative number with sub-second precision.
  const std::size_t begin = std::string("[pdl ").size();
  const std::size_t end = out.find(' ', begin);
  ASSERT_NE(end, std::string::npos);
  const std::string stamp = out.substr(begin, end - begin);
  EXPECT_NE(stamp.find('.'), std::string::npos) << stamp;
  EXPECT_GE(std::stod(stamp), 0.0);
}

TEST_F(LoggingTest, FilteringComparesSeverity) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "kept");
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "dropped too");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

}  // namespace
}  // namespace pdl::util
