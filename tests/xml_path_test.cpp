#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/path.hpp"

namespace pdl::xml {
namespace {

class XmlPathTest : public testing::Test {
 protected:
  void SetUp() override {
    auto parsed = parse(R"(
      <Master id="0">
        <Worker id="1"><PUDescriptor><Property><name>ARCH</name></Property></PUDescriptor></Worker>
        <Worker id="2"/>
        <Hybrid id="h">
          <Worker id="3"/>
        </Hybrid>
      </Master>)");
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    doc_ = std::move(parsed).value();
  }
  Document doc_;
};

TEST_F(XmlPathTest, ChildStep) {
  EXPECT_EQ(select_all(*doc_.root(), "Worker").size(), 2u);
}

TEST_F(XmlPathTest, MultiStepPath) {
  EXPECT_EQ(select_all(*doc_.root(), "Hybrid/Worker").size(), 1u);
  EXPECT_EQ(select_all(*doc_.root(), "Worker/PUDescriptor/Property").size(), 1u);
}

TEST_F(XmlPathTest, AnchoredPathChecksContextName) {
  EXPECT_EQ(select_all(*doc_.root(), "/Master/Worker").size(), 2u);
  EXPECT_TRUE(select_all(*doc_.root(), "/Wrong/Worker").empty());
}

TEST_F(XmlPathTest, AttributePredicate) {
  const Element* w = select_first(*doc_.root(), "Worker[@id='2']");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->attribute("id"), "2");
  EXPECT_EQ(select_first(*doc_.root(), "Worker[@id='99']"), nullptr);
}

TEST_F(XmlPathTest, IndexPredicateIsOneBased) {
  const Element* w = select_first(*doc_.root(), "Worker[2]");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->attribute("id"), "2");
  EXPECT_EQ(select_first(*doc_.root(), "Worker[3]"), nullptr);
}

TEST_F(XmlPathTest, WildcardStep) {
  // Master's direct element children: Worker, Worker, Hybrid.
  EXPECT_EQ(select_all(*doc_.root(), "*").size(), 3u);
}

TEST_F(XmlPathTest, DescendantAxisFindsAllDepths) {
  EXPECT_EQ(select_all(*doc_.root(), "//Worker").size(), 3u);
  EXPECT_EQ(select_all(*doc_.root(), "//Property").size(), 1u);
  // Includes the context element itself when it matches.
  EXPECT_EQ(select_all(*doc_.root(), "//Master").size(), 1u);
}

TEST_F(XmlPathTest, DescendantAxisWithPredicate) {
  const Element* w = select_first(*doc_.root(), "//Worker[@id='3']");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->parent()->name(), "Hybrid");
}

TEST_F(XmlPathTest, SelectTextReturnsContentOrEmpty) {
  EXPECT_EQ(select_text(*doc_.root(), "Worker/PUDescriptor/Property/name"), "ARCH");
  EXPECT_EQ(select_text(*doc_.root(), "Nothing/here"), "");
}

TEST_F(XmlPathTest, MalformedPathsReturnEmpty) {
  EXPECT_TRUE(select_all(*doc_.root(), "Worker[@id=2]").empty());   // unquoted
  EXPECT_TRUE(select_all(*doc_.root(), "Worker[0]").empty());       // 0 index
  EXPECT_TRUE(select_all(*doc_.root(), "").empty());
  EXPECT_TRUE(select_all(*doc_.root(), "Worker[").empty());
}

TEST_F(XmlPathTest, MutableOverloadAllowsEditing) {
  Element* w = select_first(*doc_.root(), "Worker[@id='1']");
  ASSERT_NE(w, nullptr);
  w->set_attribute("quantity", "4");
  EXPECT_EQ(select_first(*doc_.root(), "Worker[@id='1']")->attribute("quantity"), "4");
}

}  // namespace
}  // namespace pdl::xml
