// The runtime counterpart of the static A403 partition-aliasing rule:
// registering one allocation under two DataHandles hides the conflict from
// the engine's per-handle dependency inference, so two writers run
// concurrently. The static TaskGraph model flags the overlap; executing the
// same shape is a genuine data race that ThreadSanitizer confirms (the CI
// TSan job runs EngineAliasedHandles.* expecting a report).
//
// Deliberately NOT named to match the TSan stress filter
// ('*Stress*:*FaultPlan*:*FaultTolerance*:Engine.Watchdog*'): under the
// regular and ASan suites the race is benign — both writers store identical
// values — so the assertions below are deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "starvm/engine.hpp"
#include "starvm/graph.hpp"

namespace starvm {
namespace {

TEST(EngineAliasedHandles, StaticGraphFlagsOverlapTheEngineCannotSee) {
  // Model the program below: one allocation, two root registrations.
  TaskGraph g;
  const int h1 = g.add_buffer("data (handle 1)", 4096);
  const int h2 = g.add_buffer_at("data (handle 2)", g.buffers()[h1].base, 4096);
  const int w1 = g.add_task("fill_a", {{h1, Access::kWrite}});
  const int w2 = g.add_task("fill_b", {{h2, Access::kWrite}});

  // Per-handle inference produces no edge — the tasks are unordered even
  // under the engine's sequential-consistency model...
  EXPECT_TRUE(g.edges().empty());
  EXPECT_FALSE(g.reachability(g.edges()).ordered(w1, w2));
  // ...yet their byte ranges overlap: exactly the A403 finding.
  EXPECT_TRUE(g.ranges_overlap(h1, h2));
  EXPECT_FALSE(g.same_lineage(h1, h2));
}

TEST(EngineAliasedHandles, SeededWriteWriteRaceRunsUnordered) {
  Engine engine(EngineConfig::cpus(4));
  std::vector<double> data(4096, 0.0);
  // Two handles over the same allocation: the engine keys dependency
  // inference on the handle, so it sees two independent buffers.
  DataHandle* h1 = engine.register_vector(data.data(), data.size(), "h1");
  DataHandle* h2 = engine.register_vector(data.data(), data.size(), "h2");

  // Rendezvous before writing so both tasks demonstrably overlap on two
  // worker threads (tiny tasks would otherwise often serialize on one
  // thread and hide the race). Bounded spin: if the engine ever ran the
  // tasks sequentially this falls through instead of deadlocking.
  std::atomic<int> arrived{0};
  Codelet fill;
  fill.name = "fill";
  fill.impls.push_back(
      Implementation{DeviceKind::kCpu, [&arrived](const ExecContext& ctx) {
                       arrived.fetch_add(1);
                       const auto deadline =
                           std::chrono::steady_clock::now() + std::chrono::seconds(2);
                       while (arrived.load() < 2 &&
                              std::chrono::steady_clock::now() < deadline) {
                       }
                       double* buf = ctx.buffer(0);
                       for (int i = 0; i < 4096; ++i) buf[i] = 7.0;
                     }});
  engine.submit(TaskDesc{&fill, {{h1, Access::kWrite}}, "fill_a"});
  engine.submit(TaskDesc{&fill, {{h2, Access::kWrite}}, "fill_b"});
  EXPECT_TRUE(engine.wait_all().ok());

  // Both writers store the same value, so the result is deterministic even
  // though the stores themselves race (which TSan reports).
  for (double v : data) ASSERT_DOUBLE_EQ(v, 7.0);
}

}  // namespace
}  // namespace starvm
