#include <gtest/gtest.h>

#include "discovery/presets.hpp"
#include "pdl/pattern.hpp"
#include "pdl/query.hpp"
#include "pdl/well_known.hpp"

namespace pdl {
namespace {

TEST(PatternParse, MinimalMaster) {
  auto p = parse_pattern("M");
  ASSERT_TRUE(p.ok()) << p.error().str();
  ASSERT_EQ(p.value().masters().size(), 1u);
  EXPECT_EQ(p.value().masters()[0]->kind(), PuKind::kMaster);
}

TEST(PatternParse, PropertiesQuantityChildren) {
  auto p = parse_pattern("M(ARCHITECTURE=x86)[W(ARCHITECTURE=gpu)x2,Hx1[Wx8]]");
  ASSERT_TRUE(p.ok()) << p.error().str();
  const ProcessingUnit& m = *p.value().masters()[0];
  EXPECT_EQ(m.descriptor().get("ARCHITECTURE"), "x86");
  ASSERT_EQ(m.children().size(), 2u);
  EXPECT_EQ(m.children()[0]->kind(), PuKind::kWorker);
  EXPECT_EQ(m.children()[0]->quantity(), 2);
  EXPECT_EQ(m.children()[1]->kind(), PuKind::kHybrid);
  ASSERT_EQ(m.children()[1]->children().size(), 1u);
  EXPECT_EQ(m.children()[1]->children()[0]->quantity(), 8);
}

TEST(PatternParse, BarePropertyNameIsExistenceConstraint) {
  auto p = parse_pattern("M(PEAK_GFLOPS)");
  ASSERT_TRUE(p.ok());
  const Property& prop = p.value().masters()[0]->descriptor().properties()[0];
  EXPECT_EQ(prop.name, "PEAK_GFLOPS");
  EXPECT_FALSE(prop.fixed);  // existence only
}

TEST(PatternParse, RejectsMalformedPatterns) {
  EXPECT_FALSE(parse_pattern("").ok());
  EXPECT_FALSE(parse_pattern("X").ok());
  EXPECT_FALSE(parse_pattern("W").ok());           // root must be Master
  EXPECT_FALSE(parse_pattern("M[").ok());
  EXPECT_FALSE(parse_pattern("M(=x)").ok());
  EXPECT_FALSE(parse_pattern("Mx0").ok());
  EXPECT_FALSE(parse_pattern("M trailing").ok());
}

TEST(PatternToString, RoundTripsCompactSyntax) {
  const char* kPattern = "M(ARCHITECTURE=x86)[W(ARCHITECTURE=gpu)x2]";
  auto p = parse_pattern(kPattern);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(pattern_to_string(p.value()), kPattern);
}

TEST(PatternMatch, KindMustAgree) {
  Platform concrete("c");
  concrete.add_master("m");
  EXPECT_TRUE(match("M", concrete));

  auto pattern = parse_pattern("M[W]");
  ASSERT_TRUE(pattern.ok());
  auto result = match(pattern.value(), concrete);
  EXPECT_FALSE(result.matched);
  EXPECT_FALSE(result.reason.empty());
}

TEST(PatternMatch, FixedPropertyValueComparesCaseInsensitively) {
  Platform concrete("c");
  concrete.add_master("m")->descriptor().add(props::kArchitecture, "X86");
  EXPECT_TRUE(match("M(ARCHITECTURE=x86)", concrete));
  EXPECT_FALSE(match("M(ARCHITECTURE=arm)", concrete));
}

TEST(PatternMatch, ExistenceConstraintNeedsPresenceOnly) {
  Platform concrete("c");
  concrete.add_master("m")->descriptor().add(props::kPeakGflops, "10.6");
  EXPECT_TRUE(match("M(PEAK_GFLOPS)", concrete));
  EXPECT_FALSE(match("M(MISSING_PROP)", concrete));
}

TEST(PatternMatch, PropertyResolutionInheritsFromAncestors) {
  // ARCHITECTURE declared on the Master satisfies a Worker constraint.
  Platform concrete("c");
  ProcessingUnit* m = concrete.add_master("m");
  m->descriptor().add(props::kArchitecture, "x86");
  m->add_child(PuKind::kWorker, "w");
  EXPECT_TRUE(match("M[W(ARCHITECTURE=x86)]", concrete));
}

TEST(PatternMatch, QuantityAccumulatesOverConcreteChildren) {
  Platform concrete("c");
  ProcessingUnit* m = concrete.add_master("m");
  ProcessingUnit* w = m->add_child(PuKind::kWorker, "w", 8);
  w->descriptor().add(props::kArchitecture, "gpu");

  EXPECT_TRUE(match("M[W(ARCHITECTURE=gpu)x8]", concrete));
  EXPECT_TRUE(match("M[W(ARCHITECTURE=gpu)x2]", concrete));  // >= semantics
  EXPECT_FALSE(match("M[W(ARCHITECTURE=gpu)x9]", concrete));
}

TEST(PatternMatch, DisjointChildrenForDistinctPatternChildren) {
  Platform concrete("c");
  ProcessingUnit* m = concrete.add_master("m");
  m->add_child(PuKind::kWorker, "w1")->descriptor().add(props::kArchitecture, "gpu");
  m->add_child(PuKind::kWorker, "w2")->descriptor().add(props::kArchitecture, "gpu");

  // Two single-unit gpu workers satisfy Wx2 or two separate W entries...
  EXPECT_TRUE(match("M[W(ARCHITECTURE=gpu)x2]", concrete));
  EXPECT_TRUE(match("M[W(ARCHITECTURE=gpu),W(ARCHITECTURE=gpu)]", concrete));
  // ...but not three.
  EXPECT_FALSE(match("M[W(ARCHITECTURE=gpu)x3]", concrete));
}

TEST(PatternMatch, ExtraConcreteChildrenAreAllowed) {
  // Patterns are minimum requirements (paper: pre-selection keeps variants
  // whose requirements the platform *covers*).
  Platform concrete = discovery::paper_platform_starpu_2gpu();
  EXPECT_TRUE(match("M[W(ARCHITECTURE=gpu)]", concrete));
  EXPECT_TRUE(match("M[W(ARCHITECTURE=x86_core)x8]", concrete));
  EXPECT_TRUE(match("M", concrete));
}

TEST(PatternMatch, NestedHybridPatterns) {
  Platform concrete = discovery::hierarchical_hybrid_platform();
  EXPECT_TRUE(match("M[H[W(ARCHITECTURE=x86_core)x4]]", concrete));
  EXPECT_TRUE(match("M[H[W(ARCHITECTURE=gpu)],W(ARCHITECTURE=gpu)]", concrete));
  EXPECT_FALSE(match("M[H[H[W]]]", concrete));
}

TEST(PatternMatch, BindingsExposeMappedPus) {
  Platform concrete = discovery::paper_platform_starpu_2gpu();
  auto pattern = parse_pattern("M[W(ARCHITECTURE=gpu)x2]");
  ASSERT_TRUE(pattern.ok());
  auto result = match(pattern.value(), concrete);
  ASSERT_TRUE(result.matched);
  // Bindings contain the matched workers and the master.
  int workers = 0, masters = 0;
  for (const auto& b : result.bindings) {
    if (b.concrete_pu->kind() == PuKind::kWorker) ++workers;
    if (b.concrete_pu->kind() == PuKind::kMaster) ++masters;
  }
  EXPECT_EQ(workers, 2);
  EXPECT_EQ(masters, 1);
}

TEST(PatternMatch, MultiMasterPatternsNeedDistinctMasters) {
  Platform concrete("c");
  concrete.add_master("a")->descriptor().add(props::kArchitecture, "x86");
  concrete.add_master("b")->descriptor().add(props::kArchitecture, "ppe");

  Platform pattern;
  pattern.add_master("p0")->descriptor().add(
      Property{.name = "ARCHITECTURE", .value = "x86", .fixed = true});
  pattern.add_master("p1")->descriptor().add(
      Property{.name = "ARCHITECTURE", .value = "ppe", .fixed = true});
  EXPECT_TRUE(match(pattern, concrete).matched);

  // Requiring two x86 masters fails: only one exists.
  Platform pattern2;
  pattern2.add_master("p0")->descriptor().add(
      Property{.name = "ARCHITECTURE", .value = "x86", .fixed = true});
  pattern2.add_master("p1")->descriptor().add(
      Property{.name = "ARCHITECTURE", .value = "x86", .fixed = true});
  EXPECT_FALSE(match(pattern2, concrete).matched);
}

TEST(PatternMatch, SyntaxErrorsReportedThroughMatch) {
  Platform concrete("c");
  concrete.add_master("m");
  auto result = match("M[[", concrete);
  EXPECT_FALSE(result.matched);
  EXPECT_NE(result.reason.find("syntax error"), std::string::npos);
}

// The paper's platform requirements as patterns against all presets.
struct RequirementCase {
  const char* pattern;
  bool single, cpu, gpu, cell;
};

class RequirementMatrixTest : public testing::TestWithParam<RequirementCase> {};

TEST_P(RequirementMatrixTest, MatchesExpectedPlatforms) {
  const RequirementCase& c = GetParam();
  EXPECT_EQ(match(c.pattern, discovery::paper_platform_single()).matched, c.single)
      << c.pattern << " vs single";
  EXPECT_EQ(match(c.pattern, discovery::paper_platform_starpu_cpu()).matched, c.cpu)
      << c.pattern << " vs starpu";
  EXPECT_EQ(match(c.pattern, discovery::paper_platform_starpu_2gpu()).matched, c.gpu)
      << c.pattern << " vs starpu+2gpu";
  EXPECT_EQ(match(c.pattern, discovery::cell_be_platform()).matched, c.cell)
      << c.pattern << " vs cell";
}

INSTANTIATE_TEST_SUITE_P(
    PaperPlatforms, RequirementMatrixTest,
    testing::Values(
        RequirementCase{"M", true, true, true, true},
        RequirementCase{"M(ARCHITECTURE=x86)", true, true, true, false},
        RequirementCase{"M[W(ARCHITECTURE=x86_core)x8]", false, true, true, false},
        RequirementCase{"M[W(ARCHITECTURE=gpu)]", false, false, true, false},
        RequirementCase{"M[W(ARCHITECTURE=gpu)x2]", false, false, true, false},
        RequirementCase{"M[W(ARCHITECTURE=spe)x8]", false, false, false, true}));

}  // namespace
}  // namespace pdl
