#include <gtest/gtest.h>

#include "cascabel/translator.hpp"
#include "discovery/presets.hpp"

namespace cascabel {
namespace {

using pdl::discovery::paper_platform_single;
using pdl::discovery::paper_platform_starpu_2gpu;
using pdl::discovery::paper_platform_starpu_cpu;

constexpr const char* kVecaddProgram = R"(
#pragma cascabel task : x86 : Ivecadd : vecadd01 : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}

int main() {
  const int N = 512;
  double A[512] = {0};
  double B[512] = {0};
#pragma cascabel execute Ivecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B, N);
  return 0;
}
)";

TEST(Translate, ProducesAllFourStepOutputs) {
  auto result = translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu());
  ASSERT_TRUE(result.ok()) << result.error().str();
  const TranslationResult& t = result.value();
  EXPECT_EQ(t.program.variants.size(), 1u);
  EXPECT_NE(t.selection.candidates("Ivecadd"), nullptr);
  EXPECT_FALSE(t.output_source.empty());
  EXPECT_FALSE(t.compile_plan.steps.empty());
}

TEST(Translate, GeneratedSourceReplacesCallSite) {
  auto result = translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu());
  ASSERT_TRUE(result.ok());
  const std::string& src = result.value().output_source;

  // The original direct call is gone; the rt veneer call appears.
  EXPECT_EQ(src.find("vectoradd(A, B, N);"), std::string::npos);
  EXPECT_NE(src.find("::cascabel::rt::execute(\"Ivecadd\", \"executionset01\""),
            std::string::npos);
  EXPECT_NE(src.find("::cascabel::rt::arg(A, static_cast<std::size_t>(N)"),
            std::string::npos);
  EXPECT_NE(src.find("::cascabel::rt::wait();"), std::string::npos);
  // The task function itself survives as the fall-back implementation.
  EXPECT_NE(src.find("void vectoradd(double *A, double *B, int n)"),
            std::string::npos);
  // Pragmas are commented out.
  EXPECT_EQ(src.find("\n#pragma cascabel"), std::string::npos);
}

TEST(Translate, GeneratedSourceRegistersVariantAndInitializes) {
  auto result = translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu());
  ASSERT_TRUE(result.ok());
  const std::string& src = result.value().output_source;
  EXPECT_NE(src.find("register_variant(\n    \"Ivecadd\", \"vecadd01\""),
            std::string::npos);
  // The adapter passes buffers in paramlist order plus the block extent.
  EXPECT_NE(src.find("vectoradd(ctx.buffer(0), ctx.buffer(1), "
                     "static_cast<int>(ctx.handle(0).cols()));"),
            std::string::npos);
  // The target PDL is embedded and the runtime initialized from it.
  EXPECT_NE(src.find("cascabel_target_pdl"), std::string::npos);
  EXPECT_NE(src.find("::cascabel::rt::initialize(cascabel_target_pdl)"),
            std::string::npos);
  EXPECT_NE(src.find("ARCHITECTURE"), std::string::npos);  // PDL content
}

TEST(Translate, SwappingPdlChangesOnlyEmbeddedDescriptor) {
  // The paper's headline property: same input, different PDL, no source edit.
  auto cpu = translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu());
  auto gpu = translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_2gpu());
  ASSERT_TRUE(cpu.ok());
  ASSERT_TRUE(gpu.ok());
  EXPECT_NE(cpu.value().output_source, gpu.value().output_source);
  EXPECT_EQ(gpu.value().output_source.find("testbed-starpu\""), std::string::npos);
  EXPECT_NE(gpu.value().output_source.find("testbed-starpu-2gpu"), std::string::npos);
  // The program part (before the epilogue) is identical.
  const auto cut = [](const std::string& s) {
    return s.substr(0, s.find("cascabel epilogue"));
  };
  // Prologue differs only in the target comment line; compare from main().
  const auto from_main = [&](const std::string& s) {
    const std::string body = cut(s);
    return body.substr(body.find("int main"));
  };
  EXPECT_EQ(from_main(cpu.value().output_source),
            from_main(gpu.value().output_source));
}

TEST(Translate, CallWithoutSizesIsKeptWithWarning) {
  const char* kNoSizes = R"(
#pragma cascabel task : x86 : I : v : ( A: readwrite )
void f(double *A, int n) { (void)A; (void)n; }
int main() {
  double A[8];
#pragma cascabel execute I : g (A:BLOCK)
  f(A, 8);
}
)";
  auto result = translate(kNoSizes, "nosizes.cpp", paper_platform_single());
  ASSERT_TRUE(result.ok()) << result.error().str();
  // Original call preserved.
  EXPECT_NE(result.value().output_source.find("f(A, 8);"), std::string::npos);
  EXPECT_GE(pdl::count_severity(result.value().diagnostics, pdl::Severity::kWarning),
            1u);
}

TEST(Translate, MatrixDistributionsGenerateArgMatrix) {
  const char* kDgemm = R"(
#pragma cascabel task : x86 : Idgemm2 : my_dgemm : ( C: readwrite, A: read, B: read )
void dgemm_serial(double *C, double *A, double *B, int n) {
  (void)C; (void)A; (void)B; (void)n;
}
int main() {
  const int n = 64;
  double *C = nullptr, *A = nullptr, *B = nullptr;
#pragma cascabel execute Idgemm2 : all (C:BLOCK:n:n, A:BLOCK:n:n, B:WHOLE:n:n)
  dgemm_serial(C, A, B, n);
}
)";
  auto result = translate(kDgemm, "dgemm.cpp", paper_platform_starpu_cpu());
  ASSERT_TRUE(result.ok()) << result.error().str();
  const std::string& src = result.value().output_source;
  EXPECT_NE(src.find("::cascabel::rt::arg_matrix(C, static_cast<std::size_t>(n), "
                     "static_cast<std::size_t>(n)"),
            std::string::npos);
  EXPECT_NE(src.find("DistributionKind::kNone"), std::string::npos);  // B:WHOLE
}

TEST(Translate, FailsWhenFallbackMissing) {
  const char* kGpuOnly = R"(
#pragma cascabel task : cuda : Ionly : gpu_only : ( A: readwrite )
void f(double *A) { (void)A; }
)";
  auto result = translate(kGpuOnly, "gpuonly.cpp", paper_platform_starpu_2gpu());
  EXPECT_FALSE(result.ok());
}

TEST(Translate, VariantSourcesJoinTheRepository) {
  // An expert variant file contributes a CUDA implementation of the main
  // program's interface (paper Figure 1).
  const char* kVariantFile = R"(
#pragma cascabel task : cuda : Ivecadd : vecadd_gpu_expert : ( A: readwrite, B: read )
void vecadd_gpu(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
)";
  TranslationOptions options;
  options.variant_sources.emplace_back("expert_variants.cpp", kVariantFile);
  auto result = translate(kVecaddProgram, "vecadd.cpp",
                          paper_platform_starpu_2gpu(), options);
  ASSERT_TRUE(result.ok()) << result.error().str();
  EXPECT_NE(result.value().repository.find_variant("vecadd_gpu_expert"), nullptr);
  const auto* candidates = result.value().selection.candidates("Ivecadd");
  ASSERT_NE(candidates, nullptr);
  bool found = false;
  for (const auto& c : *candidates) {
    found |= c.variant->pragma.variant_name == "vecadd_gpu_expert";
  }
  EXPECT_TRUE(found);
}

TEST(Translate, DuplicateVariantAcrossSourcesFails) {
  const char* kDuplicate = R"(
#pragma cascabel task : cuda : Ivecadd : vecadd01 : ( A: readwrite, B: read )
void other(double *A, double *B, int n) { (void)A; (void)B; (void)n; }
)";
  TranslationOptions options;
  options.variant_sources.emplace_back("dup.cpp", kDuplicate);
  auto result =
      translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu(), options);
  EXPECT_FALSE(result.ok());
}

TEST(Translate, SyncEachCallCanBeDisabled) {
  TranslationOptions options;
  options.codegen.sync_each_call = false;
  auto result =
      translate(kVecaddProgram, "vecadd.cpp", paper_platform_starpu_cpu(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().output_source.find("::cascabel::rt::wait();"),
            std::string::npos);
}

}  // namespace
}  // namespace cascabel
