#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "json_checker.hpp"
#include "starvm/engine.hpp"
#include "starvm/trace_export.hpp"

namespace starvm {
namespace {

EngineStats sample_stats() {
  EngineConfig config = EngineConfig::cpus(2, 10.0);
  config.mode = ExecutionMode::kPureSim;
  config.task_overhead_us = 0.0;
  Engine engine(std::move(config));
  Codelet c;
  c.name = "work";
  c.impls.push_back({DeviceKind::kCpu, nullptr});
  c.flops = [](const std::vector<BufferView>&) { return 1e8; };
  std::vector<std::vector<double>> buffers(4, std::vector<double>(1));
  for (auto& buf : buffers) {
    DataHandle* h = engine.register_vector(buf.data(), 1);
    engine.submit(TaskDesc{&c, {{h, Access::kReadWrite}}, "t"});
  }
  EXPECT_TRUE(engine.wait_all().ok());
  return engine.stats();
}

TEST(ChromeTrace, ContainsDeviceMetadataAndTaskEvents) {
  const std::string json = to_chrome_trace(sample_stats());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("cpu0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"flops\":1e+08"), std::string::npos);
  // 2 metadata events + 4 task events.
  const auto count = [&](const char* needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"M\""), 2u);
  EXPECT_EQ(count("\"ph\":\"X\""), 4u);
}

TEST(ChromeTrace, EscapesLabels) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"dev\"1\"", DeviceKind::kCpu, 0, 0, 0});
  stats.trace.push_back(TaskTrace{1, "a\"b\\c\n", 0, 0.0, 1.0, 0.0, 1.0, 0.0});
  stats.makespan_seconds = 1.0;
  const std::string json = to_chrome_trace(stats);
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
  EXPECT_NE(json.find("dev\\\"1\\\""), std::string::npos);
}

TEST(ChromeTrace, EmptyStatsYieldEmptyValidArray) {
  const std::string json = to_chrome_trace(EngineStats{});
  EXPECT_EQ(json, "[]");
  EXPECT_TRUE(testjson::parse(json).ok);
}

TEST(ChromeTrace, ZeroDurationTaskStillRenders) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"cpu0", DeviceKind::kCpu, 1, 0.0, 0.0});
  stats.trace.push_back(TaskTrace{1, "instant", 0, 2.0, 2.0, 0.0, 0.0, 0.0});
  const std::string json = to_chrome_trace(stats);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, "instant"));
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);
}

TEST(ChromeTrace, DegenerateDurationsClampToZero) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"cpu0", DeviceKind::kCpu, 3, 0.0, 0.0});
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  // NaN start, negative duration (finish < start), infinite transfer.
  stats.trace.push_back(TaskTrace{1, "bad_start", 0, nan, 1.0, 0.0, 0.0, 1.0});
  stats.trace.push_back(TaskTrace{2, "backwards", 0, 5.0, 1.0, 0.0, 0.0, 1.0});
  stats.trace.push_back(TaskTrace{3, "bad_xfer", 0, 0.0, 1.0, inf, -2.0, 1.0});
  const std::string json = to_chrome_trace(stats);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_EQ(json.find(":nan"), std::string::npos);
  EXPECT_EQ(json.find(":inf"), std::string::npos);
  EXPECT_EQ(json.find(":-2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);       // NaN start
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);      // negative duration
  EXPECT_NE(json.find("\"transfer_us\":0"), std::string::npos);
}

TEST(ChromeTrace, NonFiniteFlopsOmitted) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"cpu0", DeviceKind::kCpu, 1, 0.0, 0.0});
  stats.trace.push_back(
      TaskTrace{1, "t", 0, 0.0, 1.0, 0.0, 1.0, std::nan("")});
  const std::string json = to_chrome_trace(stats);
  ASSERT_TRUE(testjson::parse(json).ok);
  EXPECT_EQ(json.find("\"flops\""), std::string::npos);
}

TEST(ChromeTrace, UnassignedTasksGetTheirOwnLane) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"cpu0", DeviceKind::kCpu, 0, 0.0, 0.0});
  stats.trace.push_back(TaskTrace{1, "orphan", -1, 0.0, 1.0, 0.0, 1.0, 0.0});
  const std::string json = to_chrome_trace(stats);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, "unassigned"));
  // The orphan renders on the extra lane after the last device (tid 1 here).
  EXPECT_NE(json.find("\"name\":\"orphan\",\"ph\":\"X\",\"pid\":1,\"tid\":1"),
            std::string::npos);
}

TEST(ChromeTrace, HostileLabelsSurviveARoundTrip) {
  const std::string label = "qu\"ote back\\slash ctrl\x01\ttab";
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"dev", DeviceKind::kCpu, 1, 0.0, 0.0});
  stats.trace.push_back(TaskTrace{1, label, 0, 0.0, 1.0, 0.0, 1.0, 0.0});
  const std::string json = to_chrome_trace(stats);
  const auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
  EXPECT_TRUE(testjson::contains_string(parsed, label));
}

TEST(AsciiGantt, RendersOneRowPerDevice) {
  const std::string gantt = to_ascii_gantt(sample_stats(), 40);
  // Two device rows plus the footer.
  std::size_t newlines = 0;
  for (char c : gantt) newlines += c == '\n';
  EXPECT_EQ(newlines, 3u);
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);
  EXPECT_NE(gantt.find("cpu1"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(AsciiGantt, EmptyTraceHandled) {
  EngineStats stats;
  EXPECT_EQ(to_ascii_gantt(stats), "(empty trace)\n");
}

TEST(AsciiGantt, TransferFractionPaintsDashes) {
  EngineStats stats;
  stats.devices.push_back(DeviceStats{"gpu", DeviceKind::kAccelerator, 1, 1.0, 1.0});
  // Half the task span is transfer.
  stats.trace.push_back(TaskTrace{1, "t", 0, 0.0, 2.0, 1.0, 1.0, 0.0});
  stats.makespan_seconds = 2.0;
  const std::string gantt = to_ascii_gantt(stats, 20);
  EXPECT_NE(gantt.find('-'), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

}  // namespace
}  // namespace starvm
