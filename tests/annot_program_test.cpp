#include <gtest/gtest.h>

#include "annot/annotated_program.hpp"

namespace cascabel {
namespace {

// The paper's Listings 3+4 as one program (sizes added per our convention).
constexpr const char* kVecaddProgram = R"(
#include <cstddef>

#pragma cascabel task : x86 \
  : Ivecadd \
  : vecadd01 \
  : ( A: readwrite, B: read )
void vectoradd(double *A, double *B, int n) {
  for (int i = 0; i < n; ++i) A[i] += B[i];
}

int main() {
  const int N = 1024;
  double A[1024] = {0};
  double B[1024] = {0};
#pragma cascabel execute Ivecadd : executionset01 (A:BLOCK:N, B:BLOCK:N)
  vectoradd(A, B);
  return 0;
}
)";

TEST(AnnotatedProgram, ScansPaperVecaddProgram) {
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kVecaddProgram, "vecadd.cpp", diags);
  ASSERT_TRUE(program.ok()) << program.error().str();
  const AnnotatedProgram& p = program.value();

  ASSERT_EQ(p.variants.size(), 1u);
  const TaskVariant& v = p.variants[0];
  EXPECT_EQ(v.pragma.task_interface, "Ivecadd");
  EXPECT_EQ(v.pragma.variant_name, "vecadd01");
  EXPECT_EQ(v.function.name, "vectoradd");
  ASSERT_EQ(v.function.param_names.size(), 3u);
  EXPECT_NE(v.source_text.find("A[i] += B[i]"), std::string::npos);

  ASSERT_EQ(p.calls.size(), 1u);
  const CallSite& call = p.calls[0];
  EXPECT_EQ(call.callee, "vectoradd");
  EXPECT_EQ(call.pragma.task_interface, "Ivecadd");
  EXPECT_EQ(call.pragma.execution_group, "executionset01");
  ASSERT_EQ(call.args.size(), 2u);
}

TEST(AnnotatedProgram, FindVariantAndVariantsOf) {
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kVecaddProgram, "vecadd.cpp", diags);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program.value().find_variant("vecadd01"), nullptr);
  EXPECT_EQ(program.value().find_variant("missing"), nullptr);
  EXPECT_EQ(program.value().variants_of("Ivecadd").size(), 1u);
  EXPECT_TRUE(program.value().variants_of("Iother").empty());
}

TEST(AnnotatedProgram, MultipleVariantsOfOneInterface) {
  const char* kSource = R"(
#pragma cascabel task : x86 : Iop : op_seq : (A: readwrite)
void op_a(double* A, int n) { (void)A; (void)n; }
#pragma cascabel task : cuda : Iop : op_gpu : (A: readwrite)
void op_b(double* A, int n) { (void)A; (void)n; }
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "multi.cpp", diags);
  ASSERT_TRUE(program.ok()) << program.error().str();
  EXPECT_EQ(program.value().variants_of("Iop").size(), 2u);
}

TEST(AnnotatedProgram, DanglingTaskPragmaIsError) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : v : (A: read)
int x = 3;
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "bad.cpp", diags);
  EXPECT_FALSE(program.ok());
  EXPECT_TRUE(pdl::has_errors(diags));
}

TEST(AnnotatedProgram, DanglingExecutePragmaIsError) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : v : (A: read)
void f(double* A) { (void)A; }
#pragma cascabel execute I : g (A:BLOCK:4)
int x = 3;
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "bad.cpp", diags);
  EXPECT_FALSE(program.ok());
}

TEST(AnnotatedProgram, ExecuteOfUnknownInterfaceIsError) {
  const char* kSource = R"(
#pragma cascabel execute Imissing : g (A:BLOCK:4)
f(A);
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "bad.cpp", diags);
  EXPECT_FALSE(program.ok());
}

TEST(AnnotatedProgram, DuplicateVariantNamesAreError) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : same : (A: read)
void f(double* A) { (void)A; }
#pragma cascabel task : cuda : I : same : (A: read)
void g(double* A) { (void)A; }
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "dup.cpp", diags);
  EXPECT_FALSE(program.ok());
}

TEST(AnnotatedProgram, ArityMismatchAcrossVariantsIsError) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : one : (A: read)
void f(double* A) { (void)A; }
#pragma cascabel task : cuda : I : two : (A: read)
void g(double* A, double* B) { (void)A; (void)B; }
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "arity.cpp", diags);
  EXPECT_FALSE(program.ok());
}

TEST(AnnotatedProgram, UnknownParamInPragmaWarns) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : v : (Z: read)
void f(double* A) { (void)A; }
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "warn.cpp", diags);
  ASSERT_TRUE(program.ok()) << program.error().str();
  EXPECT_GE(pdl::count_severity(diags, pdl::Severity::kWarning), 1u);
}

TEST(AnnotatedProgram, UnknownDistributionParamWarns) {
  const char* kSource = R"(
#pragma cascabel task : x86 : I : v : (A: readwrite)
void f(double* A, int n) { (void)A; (void)n; }
int main() {
  double A[4];
  const int N = 4;
#pragma cascabel execute I : g (Q:BLOCK:N)
  f(A, N);
}
)";
  pdl::Diagnostics diags;
  auto program = parse_annotated_source(kSource, "warn2.cpp", diags);
  ASSERT_TRUE(program.ok()) << program.error().str();
  EXPECT_GE(pdl::count_severity(diags, pdl::Severity::kWarning), 1u);
}

TEST(AnnotatedProgram, ProgramWithoutPragmasIsEmptyButValid) {
  pdl::Diagnostics diags;
  auto program = parse_annotated_source("int main() { return 0; }", "plain.cpp", diags);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program.value().variants.empty());
  EXPECT_TRUE(program.value().calls.empty());
}

}  // namespace
}  // namespace cascabel
