#include <gtest/gtest.h>

#include "cascabel/builtin_variants.hpp"
#include "cascabel/repository.hpp"
#include "starvm/engine.hpp"

namespace cascabel {
namespace {

TaskVariant variant(const char* interface_name, const char* name,
                    std::vector<std::string> platforms) {
  TaskVariant v;
  v.pragma.task_interface = interface_name;
  v.pragma.variant_name = name;
  v.pragma.target_platforms = std::move(platforms);
  return v;
}

TEST(Repository, DefaultRequirementsCoverPaperPlatforms) {
  TaskRepository repo = TaskRepository::with_defaults();
  ASSERT_NE(repo.requirement("x86"), nullptr);
  EXPECT_EQ(*repo.requirement("x86"), "M");
  ASSERT_NE(repo.requirement("cuda"), nullptr);
  EXPECT_NE(repo.requirement("cuda")->find("gpu"), std::string::npos);
  EXPECT_NE(repo.requirement("smp"), nullptr);
  EXPECT_NE(repo.requirement("opencl"), nullptr);
  EXPECT_NE(repo.requirement("cell"), nullptr);
  EXPECT_EQ(repo.requirement("vax"), nullptr);
}

TEST(Repository, AddAndLookupVariants) {
  TaskRepository repo;
  EXPECT_TRUE(repo.add_variant(variant("I", "a", {"x86"})));
  EXPECT_TRUE(repo.add_variant(variant("I", "b", {"cuda"})));
  EXPECT_TRUE(repo.add_variant(variant("J", "c", {"x86"})));
  EXPECT_FALSE(repo.add_variant(variant("I", "a", {"cell"})));  // duplicate name

  EXPECT_NE(repo.find_variant("a"), nullptr);
  EXPECT_EQ(repo.find_variant("zz"), nullptr);
  EXPECT_EQ(repo.variants_of("I").size(), 2u);
  EXPECT_EQ(repo.interfaces().size(), 2u);
}

TEST(Repository, BindAndResolveImplementations) {
  TaskRepository repo;
  repo.add_variant(variant("I", "a", {"x86"}));
  bool ran = false;
  repo.bind(BoundImpl{"a", starvm::DeviceKind::kCpu,
                      [&](const starvm::ExecContext&) { ran = true; },
                      nullptr});
  const BoundImpl* impl = repo.bound("a");
  ASSERT_NE(impl, nullptr);
  EXPECT_EQ(impl->device_kind, starvm::DeviceKind::kCpu);
  starvm::ExecContext ctx;
  impl->fn(ctx);
  EXPECT_TRUE(ran);
  EXPECT_EQ(repo.bound("other"), nullptr);
}

TEST(Repository, CustomRequirementOverrides) {
  TaskRepository repo = TaskRepository::with_defaults();
  repo.set_platform_requirement("cuda", "M[W(ARCHITECTURE=gpu)x4]");
  EXPECT_EQ(*repo.requirement("cuda"), "M[W(ARCHITECTURE=gpu)x4]");
}

TEST(Repository, FallbackPlatformDetection) {
  EXPECT_TRUE(TaskRepository::is_fallback_platform("x86"));
  EXPECT_TRUE(TaskRepository::is_fallback_platform("X86"));
  EXPECT_FALSE(TaskRepository::is_fallback_platform("cuda"));
}

TEST(BuiltinVariants, RegisterAllInterfaces) {
  TaskRepository repo = TaskRepository::with_defaults();
  register_builtin_variants(repo);
  EXPECT_EQ(repo.variants_of("Idgemm").size(), 4u);
  EXPECT_EQ(repo.variants_of("Ivecadd").size(), 3u);
  // Every builtin variant has an executable binding with a flops model.
  for (const auto& v : repo.variants()) {
    const BoundImpl* impl = repo.bound(v.pragma.variant_name);
    ASSERT_NE(impl, nullptr) << v.pragma.variant_name;
    EXPECT_TRUE(static_cast<bool>(impl->fn));
    EXPECT_TRUE(static_cast<bool>(impl->flops));
  }
}

TEST(BuiltinVariants, DgemmImplementationComputes) {
  TaskRepository repo;
  register_builtin_variants(repo);
  const BoundImpl* impl = repo.bound("dgemm_seq");
  ASSERT_NE(impl, nullptr);

  // 2x2: C += A*B with A = I, exercised through a real engine so the
  // handles carry geometry.
  std::vector<double> c = {0, 0, 0, 0}, a = {1, 0, 0, 1}, b = {5, 6, 7, 8};
  starvm::EngineConfig config = starvm::EngineConfig::cpus(1);
  starvm::Engine engine(std::move(config));
  starvm::DataHandle* dc = engine.register_matrix(c.data(), 2, 2);
  starvm::DataHandle* da = engine.register_matrix(a.data(), 2, 2);
  starvm::DataHandle* db = engine.register_matrix(b.data(), 2, 2);
  starvm::Codelet codelet;
  codelet.name = "dgemm";
  codelet.impls.push_back(starvm::Implementation{starvm::DeviceKind::kCpu, impl->fn});
  codelet.flops = impl->flops;
  engine.submit(starvm::TaskDesc{&codelet,
                                 {{dc, starvm::Access::kReadWrite},
                                  {da, starvm::Access::kRead},
                                  {db, starvm::Access::kRead}}});
  EXPECT_TRUE(engine.wait_all().ok());
  EXPECT_DOUBLE_EQ(c[0], 5);
  EXPECT_DOUBLE_EQ(c[1], 6);
  EXPECT_DOUBLE_EQ(c[2], 7);
  EXPECT_DOUBLE_EQ(c[3], 8);
}

}  // namespace
}  // namespace cascabel
